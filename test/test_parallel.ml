(* Domain pool, parallel combinators and the speculative executor.
   This container may expose a single core; every test here checks
   correctness (results, exceptions, abort reasons), never speedup. *)

let qtest = QCheck_alcotest.to_alcotest

let test_parallel_for_covers_range () =
  Js_parallel.Pool.with_pool ~domains:3 (fun p ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      Js_parallel.Pool.parallel_for p ~lo:0 ~hi:n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_parallel_for_empty_and_tiny () =
  Js_parallel.Pool.with_pool ~domains:2 (fun p ->
      let count = Atomic.make 0 in
      Js_parallel.Pool.parallel_for p ~lo:5 ~hi:5 (fun _ ->
          Atomic.incr count);
      Alcotest.(check int) "empty range" 0 (Atomic.get count);
      Js_parallel.Pool.parallel_for p ~lo:5 ~hi:6 (fun _ ->
          Atomic.incr count);
      Alcotest.(check int) "single-element range" 1 (Atomic.get count))

let test_parallel_for_exception_propagates () =
  Js_parallel.Pool.with_pool ~domains:2 (fun p ->
      match
        Js_parallel.Pool.parallel_for p ~lo:0 ~hi:100 (fun i ->
            if i = 37 then failwith "boom")
      with
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
      | () -> Alcotest.fail "expected exception");
  (* pool remains usable after a failed loop *)
  Js_parallel.Pool.with_pool ~domains:2 (fun p ->
      (try
         Js_parallel.Pool.parallel_for p ~lo:0 ~hi:10 (fun _ ->
             failwith "first")
       with Failure _ -> ());
      let sum =
        Js_parallel.Pool.parallel_reduce p ~lo:1 ~hi:11 ~init:0
          ~body:(fun i -> i)
          ~combine:( + ) ()
      in
      Alcotest.(check int) "pool survives exceptions" 55 sum)

let test_parallel_reduce_sum () =
  Js_parallel.Pool.with_pool ~domains:4 (fun p ->
      let sum =
        Js_parallel.Pool.parallel_reduce p ~lo:0 ~hi:100_000 ~init:0
          ~body:(fun i -> i)
          ~combine:( + ) ()
      in
      Alcotest.(check int) "gauss" (100_000 * 99_999 / 2) sum)

let prop_reduce_matches_sequential_fold =
  QCheck.Test.make ~name:"parallel_reduce = List fold" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 500))
    (fun (domains, n) ->
       Js_parallel.Pool.with_pool ~domains (fun p ->
           let body i = (i * 7) mod 13 in
           let par =
             Js_parallel.Pool.parallel_reduce p ~lo:0 ~hi:n ~init:0 ~body
               ~combine:( + ) ()
           in
           let seq = List.fold_left ( + ) 0 (List.init n body) in
           par = seq))

(* Regression: a non-identity [init] must be counted exactly once. The
   old pool seeded every chunk accumulator with [init] *and* used it
   as the base of the final combine, so any init <> 0 here was counted
   chunks+1 times. *)
let prop_reduce_non_identity_init =
  QCheck.Test.make ~name:"parallel_reduce with non-identity init" ~count:30
    QCheck.(
      triple (int_range 1 4) (int_range 0 500) (int_range (-50) 50))
    (fun (domains, n, init) ->
       Js_parallel.Pool.with_pool ~domains (fun p ->
           let body i = ((i * 7) mod 13) - 5 in
           let par =
             Js_parallel.Pool.parallel_reduce p ~lo:0 ~hi:n ~init ~body
               ~combine:( + ) ()
           in
           let seq =
             List.fold_left
               (fun acc i -> acc + body i)
               init
               (List.init n Fun.id)
           in
           par = seq))

(* String concatenation is associative but not commutative, and ">" is
   not its identity: the reduce must combine the chunk partials in
   ascending index order onto a single init for this to hold. *)
let prop_reduce_associative_non_commutative =
  QCheck.Test.make ~name:"parallel_reduce ordered (string concat)" ~count:20
    QCheck.(pair (int_range 1 4) (int_range 0 120))
    (fun (domains, n) ->
       Js_parallel.Pool.with_pool ~domains (fun p ->
           let body i = String.make 1 (Char.chr (97 + (i mod 26))) in
           let par =
             Js_parallel.Pool.parallel_reduce p ~lo:0 ~hi:n ~init:">" ~body
               ~combine:( ^ ) ()
           in
           let seq =
             List.fold_left
               (fun acc i -> acc ^ body i)
               ">"
               (List.init n Fun.id)
           in
           String.equal par seq))

let test_map_array () =
  Js_parallel.Pool.with_pool ~domains:3 (fun p ->
      let src = Array.init 1000 (fun i -> i) in
      let dst = Js_parallel.Pool.map_array p (fun x -> x * x) src in
      Alcotest.(check bool) "squares" true
        (Array.for_all2 (fun a b -> a * a = b) src dst);
      Alcotest.(check (array int)) "empty array" [||]
        (Js_parallel.Pool.map_array p (fun x -> x) [||]))

let test_pool_shutdown_idempotent () =
  let p = Js_parallel.Pool.create ~domains:2 () in
  Js_parallel.Pool.parallel_for p ~lo:0 ~hi:10 (fun _ -> ());
  Js_parallel.Pool.shutdown p;
  Js_parallel.Pool.shutdown p (* second shutdown is a no-op *)

let test_pool_size_clamped () =
  Js_parallel.Pool.with_pool ~domains:0 (fun p ->
      Alcotest.(check int) "at least one participant" 1
        (Js_parallel.Pool.size p))

let test_submit_after_shutdown_raises () =
  let p = Js_parallel.Pool.create ~domains:2 () in
  Js_parallel.Pool.shutdown p;
  match Js_parallel.Pool.submit p (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "submit on a shut-down pool must raise"

let test_submitted_jobs_run () =
  Js_parallel.Pool.with_pool ~domains:3 (fun p ->
      let count = Atomic.make 0 in
      for _ = 1 to 20 do
        Js_parallel.Pool.submit p (fun () -> Atomic.incr count)
      done;
      (* a loop barrier also drains previously submitted jobs *)
      Js_parallel.Pool.parallel_for p ~lo:0 ~hi:1 (fun _ -> ());
      let deadline = Unix.gettimeofday () +. 5.0 in
      while Atomic.get count < 20 && Unix.gettimeofday () < deadline do
        Thread.yield ()
      done;
      Alcotest.(check int) "all submitted jobs ran" 20 (Atomic.get count))

(* Satellite regression: an exception escaping a submitted job must not
   vanish — it is counted in the tasks_failed telemetry and routed to
   the pool's [on_error] handler. *)
let test_submit_failure_reported () =
  let seen = Atomic.make 0 in
  let p =
    Js_parallel.Pool.create ~domains:2
      ~on_error:(fun exn ->
          if exn = Failure "submitted boom" then Atomic.incr seen)
      ()
  in
  Fun.protect
    ~finally:(fun () -> Js_parallel.Pool.shutdown p)
    (fun () ->
       Js_parallel.Pool.submit p (fun () -> failwith "submitted boom");
       Js_parallel.Pool.submit p (fun () -> ());
       let deadline = Unix.gettimeofday () +. 5.0 in
       while Atomic.get seen < 1 && Unix.gettimeofday () < deadline do
         ignore (Js_parallel.Pool.parallel_for p ~lo:0 ~hi:1 (fun _ -> ()));
         Thread.yield ()
       done;
       Alcotest.(check int) "on_error saw the exception" 1 (Atomic.get seen);
       Alcotest.(check int) "tasks_failed counted" 1
         (Js_parallel.Telemetry.total_failed (Js_parallel.Pool.stats p));
       Alcotest.(check bool) "json mentions tasks_failed" true
         (Helpers.contains ~sub:"\"tasks_failed\":1"
            (Js_parallel.Pool.stats_json p)))

(* Property: whatever chunking and whichever index fails, the raise is
   re-raised in the caller, no chunk is left parked, and the same pool
   then runs a clean parallel_for and parallel_reduce. *)
let prop_pool_reusable_after_failure =
  QCheck.Test.make ~name:"pool reusable after any failing index" ~count:30
    QCheck.(
      quad (int_range 1 4) (int_range 1 200) (int_range 1 64)
        (int_range 0 1000))
    (fun (domains, n, chunk, fail_at) ->
       let fail_at = fail_at mod n in
       Js_parallel.Pool.with_pool ~domains (fun p ->
           let raised =
             match
               Js_parallel.Pool.parallel_for p ~lo:0 ~hi:n ~chunk (fun i ->
                   if i = fail_at then failwith "qcheck boom")
             with
             | exception Failure msg -> msg = "qcheck boom"
             | () -> false
           in
           let hits = Array.make n 0 in
           Js_parallel.Pool.parallel_for p ~lo:0 ~hi:n ~chunk (fun i ->
               hits.(i) <- hits.(i) + 1);
           let clean = Array.for_all (fun h -> h = 1) hits in
           let sum =
             Js_parallel.Pool.parallel_reduce p ~lo:0 ~hi:n ~chunk ~init:0
               ~body:Fun.id ~combine:( + ) ()
           in
           raised && clean && sum = n * (n - 1) / 2))

(* ------------------------------------------------------------------ *)
(* Telemetry *)

let test_telemetry_tasks_sum_to_chunks () =
  Js_parallel.Pool.with_pool ~domains:3 (fun p ->
      Js_parallel.Pool.reset_stats p;
      Js_parallel.Pool.parallel_for p ~lo:0 ~hi:64 ~chunk:1 (fun _ -> ());
      let st = Js_parallel.Pool.stats p in
      Alcotest.(check int) "participants" 3 st.participants;
      Alcotest.(check int) "one loop recorded" 1 st.loops_run;
      Alcotest.(check int) "tasks executed = chunks" 64
        (Js_parallel.Telemetry.total_tasks st);
      match st.recent_loops with
      | [ l ] ->
        Alcotest.(check int) "chunk count in loop record" 64 l.chunks;
        Alcotest.(check bool) "wall >= 0" true (l.wall_ms >= 0.)
      | ls -> Alcotest.failf "expected 1 loop record, got %d" (List.length ls))

let burn_ms ms =
  let t0 = Unix.gettimeofday () in
  let x = ref 0. in
  while Unix.gettimeofday () -. t0 < ms /. 1000. do
    for _ = 1 to 1000 do
      x := !x +. 1.
    done
  done;
  ignore !x

let test_telemetry_steals_under_imbalance () =
  Js_parallel.Pool.with_pool ~domains:4 (fun p ->
      (* chunk 1 puts 8 tasks on each of the 4 deques; task 0 burns
         ~120 ms, so whoever picks it up stalls and the rest of its
         deque is stolen by participants that finished their share.
         Whether a steal actually *lands* depends on how the OS
         schedules 4 domains (on a single hardware thread a stalled
         worker may simply never be preempted mid-deque), so retry the
         imbalanced loop a few times and require one success overall. *)
      let rec attempt tries =
        Js_parallel.Pool.reset_stats p;
        Js_parallel.Pool.parallel_for p ~lo:0 ~hi:32 ~chunk:1 (fun i ->
            if i = 0 then burn_ms 120. else burn_ms 1.);
        let st = Js_parallel.Pool.stats p in
        Alcotest.(check bool) "steals attempted" true
          (List.fold_left
             (fun a (d : Js_parallel.Telemetry.domain_stats) ->
                a + d.steals_attempted)
             0 st.domains
           > 0);
        if Js_parallel.Telemetry.total_steals st = 0 && tries > 1 then
          attempt (tries - 1)
        else
          Alcotest.(check bool) "steals succeeded under imbalance" true
            (Js_parallel.Telemetry.total_steals st > 0)
      in
      attempt 10)

let test_stats_json_shape () =
  Js_parallel.Pool.with_pool ~domains:2 (fun p ->
      Js_parallel.Pool.parallel_for p ~lo:0 ~hi:100 (fun _ -> ());
      let json = Js_parallel.Pool.stats_json p in
      List.iter
        (fun sub ->
           Alcotest.(check bool)
             (Printf.sprintf "json mentions %s" sub)
             true
             (Helpers.contains ~sub json))
        [ "\"participants\":2"; "\"loops_run\""; "\"tasks_executed\"";
          "\"steals_succeeded\""; "\"domains\":["; "\"loops\":[";
          "\"wall_ms\""; "\"fork_ms\""; "\"join_ms\""; "\"idle_spins\"" ])

(* ------------------------------------------------------------------ *)
(* Speculative executor *)

let map_setup =
  "var src = []; var dst = [];\n\
   (function() { for (var i = 0; i < 40; i++) { src.push(i * 3 % 11); } })();"

let test_speculation_commits_on_map () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:"function(i) { dst[i] = src[i] * src[i]; return dst[i]; }"
      ~lo:0 ~hi:40 ()
  with
  | Committed { result; _ } ->
    let seq =
      Js_parallel.Speculative.run_sequential ~setup_src:map_setup
        ~iter_src:"function(i) { dst[i] = src[i] * src[i]; return dst[i]; }"
        ~lo:0 ~hi:40 ()
    in
    Alcotest.(check (float 1e-9)) "parallel = sequential" seq result
  | Aborted r ->
    Alcotest.failf "unexpected abort: %s"
      (Js_parallel.Speculative.abort_reason_to_string r)

let test_speculation_aborts_on_flow () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:
        "function(i) { dst[i] = (i > 0 ? dst[i - 1] : 0) + src[i]; return dst[i]; }"
      ~lo:0 ~hi:40 ()
  with
  | Committed _ -> Alcotest.fail "prefix sum must abort"
  | Aborted (Carried_dependence reasons) ->
    Alcotest.(check bool) "reason names the flow read" true
      (List.exists (Helpers.contains ~sub:"read of property") reasons)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_aborts_on_waw () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:"function(i) { dst[0] = i; return i; }" ~lo:0 ~hi:40 ()
  with
  | Committed _ -> Alcotest.fail "all-write-one-slot must abort"
  | Aborted (Carried_dependence reasons) ->
    Alcotest.(check bool) "reason names the WAW" true
      (List.exists (Helpers.contains ~sub:"repeated write") reasons)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_aborts_on_dom () =
  let setup =
    "var el = document.createElement(\"div\");\n\
     document.body.appendChild(el);"
  in
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:setup
      ~iter_src:"function(i) { el.setAttribute(\"n\", \"\" + i); return i; }"
      ~lo:0 ~hi:10 ()
  with
  | Committed _ -> Alcotest.fail "DOM loop must abort"
  | Aborted (Dom_access n) -> Alcotest.(check bool) "counted" true (n > 0)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_reports_runtime_errors () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:""
      ~iter_src:"function(i) { return missing_function(i); }" ~lo:0 ~hi:4 ()
  with
  | Committed _ -> Alcotest.fail "must abort"
  | Aborted (Runtime_error msg) ->
    Alcotest.(check bool) "mentions the reference error" true
      (Helpers.contains ~sub:"missing_function" msg)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

(* Satellite regression: a runaway iteration body used to blow the
   whole speculation up with an escaping [Budget_exhausted]; it must
   degrade into an abort that names the budget. *)
let test_speculation_aborts_on_runaway_body () =
  match
    Js_parallel.Speculative.run ~domains:2 ~budget:100_000L ~setup_src:""
      ~iter_src:"function(i) { while (true) { i = i + 1; } return i; }"
      ~lo:0 ~hi:4 ()
  with
  | Committed _ -> Alcotest.fail "runaway body must abort"
  | Aborted (Runtime_error msg) ->
    Alcotest.(check bool) "reason names the budget" true
      (Helpers.contains ~sub:"budget exhausted" msg)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_reduction_accumulator_allowed () =
  (* the harness's own __acc accumulation must not abort the loop *)
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:"function(i) { return src[i]; }" ~lo:0 ~hi:40 ()
  with
  | Committed { result; _ } ->
    Alcotest.(check bool) "sum positive" true (result > 0.)
  | Aborted r ->
    Alcotest.failf "unexpected abort: %s"
      (Js_parallel.Speculative.abort_reason_to_string r)

(* ------------------------------------------------------------------ *)
(* Native kernels: parallel equals sequential *)

let test_kernels_parallel_equals_sequential () =
  List.iter
    (fun (k : Workloads.Kernels.kernel) ->
       let size = max 32 (k.default_size / 8) in
       let seq = k.run size in
       let par =
         Js_parallel.Pool.with_pool ~domains:2 (fun p -> k.run ~pool:p size)
       in
       Alcotest.(check bool)
         (k.kname ^ " checksum equality")
         true
         (Float.abs (seq -. par) < (1e-9 *. Float.abs seq) +. 1e-9))
    Workloads.Kernels.all

let suite =
  [ ("parallel_for coverage", `Quick, test_parallel_for_covers_range);
    ("parallel_for edge ranges", `Quick, test_parallel_for_empty_and_tiny);
    ("parallel_for exceptions", `Quick, test_parallel_for_exception_propagates);
    ("parallel_reduce sum", `Quick, test_parallel_reduce_sum);
    qtest prop_reduce_matches_sequential_fold;
    qtest prop_reduce_non_identity_init;
    qtest prop_reduce_associative_non_commutative;
    ("map_array", `Quick, test_map_array);
    ("shutdown idempotent", `Quick, test_pool_shutdown_idempotent);
    ("pool size clamped", `Quick, test_pool_size_clamped);
    ("submit after shutdown raises", `Quick, test_submit_after_shutdown_raises);
    ("submitted jobs run", `Quick, test_submitted_jobs_run);
    ("submit failures reported", `Quick, test_submit_failure_reported);
    qtest prop_pool_reusable_after_failure;
    ("telemetry tasks = chunks", `Quick, test_telemetry_tasks_sum_to_chunks);
    ("telemetry steals under imbalance", `Slow,
     test_telemetry_steals_under_imbalance);
    ("telemetry json shape", `Quick, test_stats_json_shape);
    ("speculation commits on map", `Quick, test_speculation_commits_on_map);
    ("speculation aborts on flow", `Quick, test_speculation_aborts_on_flow);
    ("speculation aborts on WAW", `Quick, test_speculation_aborts_on_waw);
    ("speculation aborts on DOM", `Quick, test_speculation_aborts_on_dom);
    ("speculation reports errors", `Quick, test_speculation_reports_runtime_errors);
    ("speculation aborts on runaway body", `Quick,
     test_speculation_aborts_on_runaway_body);
    ("speculation allows reduction", `Quick, test_speculation_reduction_accumulator_allowed);
    ("kernels parallel = sequential", `Slow, test_kernels_parallel_equals_sequential) ]
