(** Characterization triples and stamps (paper Sec. 3.3).

    The dependence analysis maintains, at every moment, a stack of
    triples — one per open loop — of the loop's identifier, its
    instance number (how many times the syntactic loop has been
    entered) and its current iteration. Objects and scopes are stamped
    with the stack current at their creation; diffing an access's stack
    against a stamp yields a per-level verdict in the paper's
    ["ok"/"dependence"] notation. *)

type mark = { loop : Jsir.Ast.loop_id; instance : int; iteration : int }
(** One stack entry: which loop, which runtime instance of it, which
    iteration within that instance. *)

type stamp = { marks : mark array; seq : int }
(** The loop stack at creation time (outermost first) plus the global
    event sequence number of the creation, used to decide whether other
    instances of a loop already existed when the location was born. *)

(** Per-level verdict. The paper notes "dependence ok" (shared across
    instances but private per iteration) is contradictory; this type
    makes it unrepresentable. *)
type flags =
  | Ok_ok      (** private per instance and per iteration *)
  | Ok_dep     (** private per instance, shared across its iterations *)
  | Dep_dep    (** shared across instances (hence across iterations) *)

type level = {
  lid : Jsir.Ast.loop_id;
  flags : flags;
  aligned : bool;
      (** the stamp had a matching mark for this level: a non-[Ok_ok]
          flag here is a genuinely loop-carried relation, not mere
          pre-existence of the location *)
}

type characterization = level list
(** One verdict per open loop, outermost first — the paper's
    ["while(line 24) ok ok -> for(line 6) ok dependence"] lists. *)

val root_stamp : stamp
(** Stamp of locations created before any instrumented code ran
    (globals, setup state). *)

val is_problematic : characterization -> bool
(** Some level differs from [Ok_ok]: the access is reported. *)

val has_carried_dependence : characterization -> bool
(** Some aligned level carries a non-[Ok_ok] flag. *)

val iteration_carrier : characterization -> Jsir.Ast.loop_id option
(** The outermost loop whose *iterations* carry the dependence (same
    instance, different iteration). Cross-instance sharing returns
    [None]: successive instances are ordered by the program anyway and
    do not impede parallelizing one instance's iterations. *)

val sharing_carrier : characterization -> Jsir.Ast.loop_id option
(** The outermost level with any sharing at all; used to attribute
    write advisories to a nest. *)

val flags_strings : flags -> string * string
(** The paper's (instance, iteration) words, e.g.
    [("ok", "dependence")]. *)

val to_string : Jsir.Loops.info array -> characterization -> string
(** Render in the paper's arrow notation, resolving loop labels through
    the static index. *)

val characterize :
  prev_entry_seq:(Jsir.Ast.loop_id -> int) ->
  stamp ->
  mark list ->
  characterization
(** [characterize ~prev_entry_seq stamp current] diffs the creation (or
    last-write) [stamp] against the [current] stack (outermost first).
    [prev_entry_seq loop] must report the global sequence at which
    [loop]'s previous instance was entered (0 if none): it decides, for
    levels the stamp has no mark for, whether another instance already
    existed after the location was created (shared, [Dep_dep]) or the
    current instance is the first to see it ([Ok_dep]). *)
