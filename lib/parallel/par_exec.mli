(** Parallel execution of statically-proven loop nests.

    Closes the loop between the static analyzer's [Parallel]/[Reduction]
    verdicts and the work-stealing pool: an interpreter hook intercepts
    eligible [For] nests, partitions the iteration space into chunks,
    runs each chunk on a share-nothing {!Interp.Fork} of the loop-entry
    state and merges the per-fork heap diffs back in chunk order.
    Reductions are executed per operator: order-insensitive folds
    (min/max/bitwise, [+] over proven exact integers) seed each fork
    with the operator identity and combine the partials exactly once
    in ascending chunk order; order-sensitive float [+] accumulators
    with a single accumulation site replay a per-iteration journal in
    global order, reproducing the sequential fold bit-for-bit;
    products and unrecognized operators never run in parallel. Any
    condition the
    merge cannot prove deterministic — host access, timers,
    [Math.random], clock reads, abrupt completions, bound drift,
    conflicting array growth — poisons the instance: the forks are
    discarded and the untouched master re-runs the loop sequentially,
    so observable output is byte-identical to sequential execution by
    construction. *)

type kind = Kparallel | Kreduction of Analysis.Verdict.acc list

type mode =
  | Measure
      (** run eligible nests sequentially but individually timed — the
          per-nest baseline for the speedup table *)
  | Parallel of Pool.t  (** fork/merge execution on the given pool *)

type t

val create : ?min_trips:int -> mode:mode -> jobs:int -> unit -> t
(** [min_trips] (default 8) is the smallest trip count worth forking
    for; below it the nest runs sequentially. *)

val install : t -> Interp.Value.state -> report:Analysis.Driver.report -> unit
(** Install the [on_loop] hook on [st], planning every nest the report
    proves [Parallel] or [Reduction]. *)

val nests_run : t -> int
(** Distinct nests that completed at least one parallel instance. *)

val stats_json : ?pool:Pool.t -> t -> string
(** Per-nest telemetry — instances, chunks, iterations, fork/merge
    wall-clock, fallbacks, attributed busy vticks — plus the pool
    counters when [pool] is given. *)

(**/**)

type nest_stats = {
  mutable instances : int;
  mutable seq_instances : int;
  mutable iterations : int;
  mutable chunks : int;
  mutable par_ms : float;
  mutable seq_ms : float;
  mutable fork_ms : float;
  mutable merge_ms : float;
  mutable fallbacks : int;
  mutable busy_ticks : int64;
}

val nest_rows : t -> (int * string * nest_stats) list
(** (loop id, label, stats), ascending id — consumed by [bench] to
    build the measured-speedup table. *)
