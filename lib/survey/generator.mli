(** Synthetic survey-respondent generation (paper Sec. 2).

    The paper's raw responses are not public; we generate a
    deterministic population of 174 respondents whose marginals equal
    the published ones ({!Distributions}), with free-text answers drawn
    from per-category phrase templates. The analysis pipeline then has
    to *recover* Figures 1-4 from the raw texts, which is what the
    bench and tests assert. *)

val generate : ?seed:int -> unit -> Types.respondent array
(** Deterministic population; default seed 2015. *)
