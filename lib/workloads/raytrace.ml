(* Realtime Raytracing — jwagner's gist demo (Table 1, "Games").

   One nest dominates (98% in the paper): the per-row/per-pixel loop.
   Intersection and background shading are inlined (long call-free
   stretches are what starve the function-granular Gecko sampler and
   produce the paper's active < in-loops anomaly for this app), while
   hits call a recursive [shade] with data-dependent reflection depth
   ("the Raytracing algorithm contains variable depth recursion").
   Pixels scatter into the frame buffer: "very easy" dependences. *)

let source = {|
var W = Math.floor(32 * SCALE) + 6;
var H = Math.floor(46 * SCALE) + 8;

var canvas = document.createElement("canvas");
canvas.width = W; canvas.height = H;
canvas.id = "rt-canvas";
document.body.appendChild(canvas);
var ctx = canvas.getContext("2d");

var spheres = [
  { x: 0.0, y: -0.6, z: 3.0, r: 1.0, cr: 255, cg: 60, cb: 40, refl: 0.6 },
  { x: 1.4, y: 0.4, z: 4.2, r: 0.8, cr: 40, cg: 200, cb: 90, refl: 0.3 },
  { x: -1.3, y: 0.5, z: 3.6, r: 0.7, cr: 60, cg: 90, cb: 255, refl: 0.0 },
  { x: 0.2, y: 1.6, z: 5.0, r: 1.1, cr: 230, cg: 210, cb: 60, refl: 0.4 }
];
var lightX = -3, lightY = -4, lightZ = -1;
var frame = 0;

// recursive shading with data-dependent depth
function shade(px, py, pz, dx, dy, dz, hit, depth) {
  var s = spheres[hit];
  var nx = (px - s.x) / s.r;
  var ny = (py - s.y) / s.r;
  var nz = (pz - s.z) / s.r;
  var lx = lightX - px, ly = lightY - py, lz = lightZ - pz;
  var ll = Math.sqrt(lx * lx + ly * ly + lz * lz);
  lx /= ll; ly /= ll; lz /= ll;
  var diff = nx * lx + ny * ly + nz * lz;
  if (diff < 0.05) { diff = 0.05; }
  var r = s.cr * diff, g = s.cg * diff, b = s.cb * diff;
  if (s.refl > 0.01 && depth < 3) {
    var dot = dx * nx + dy * ny + dz * nz;
    var rx = dx - 2 * dot * nx;
    var ry = dy - 2 * dot * ny;
    var rz = dz - 2 * dot * nz;
    // find the closest sphere along the reflected ray
    var best = -1;
    var bestT = 1e9;
    var k;
    for (k = 0; k < spheres.length; k++) {
      if (k !== hit) {
        var q = spheres[k];
        var ox = px - q.x, oy = py - q.y, oz = pz - q.z;
        var bq = ox * rx + oy * ry + oz * rz;
        var cq = ox * ox + oy * oy + oz * oz - q.r * q.r;
        var disc = bq * bq - cq;
        if (disc > 0) {
          var t = -bq - Math.sqrt(disc);
          if (t > 0.001 && t < bestT) { bestT = t; best = k; }
        }
      }
    }
    if (best >= 0) {
      var rr = shade(px + rx * bestT, py + ry * bestT, pz + rz * bestT,
                     rx, ry, rz, best, depth + 1);
      r = r * (1 - s.refl) + rr.r * s.refl;
      g = g * (1 - s.refl) + rr.g * s.refl;
      b = b * (1 - s.refl) + rr.b * s.refl;
    }
  }
  return { r: r, g: g, b: b };
}

function render() {
  var img = ctx.createImageData(W, H);
  var data = img.data;
  var wobble = Math.sin(frame * 0.3) * 0.4;
  var y;
  for (y = 0; y < H; y++) {
    var x;
    for (x = 0; x < W; x++) {
      // primary ray, intersection fully inlined
      var dx = (x / W - 0.5) * 1.6 + wobble * 0.05;
      var dy = (y / H - 0.5) * 1.2;
      var dz = 1.0;
      var dl = Math.sqrt(dx * dx + dy * dy + dz * dz);
      dx /= dl; dy /= dl; dz /= dl;
      var best = -1;
      var bestT = 1e9;
      var k;
      for (k = 0; k < spheres.length; k++) {
        var s = spheres[k];
        var ox = -s.x, oy = -s.y, oz = -s.z;
        var b2 = ox * dx + oy * dy + oz * dz;
        var c2 = ox * ox + oy * oy + oz * oz - s.r * s.r;
        var disc = b2 * b2 - c2;
        if (disc > 0) {
          var t = -b2 - Math.sqrt(disc);
          if (t > 0.001 && t < bestT) { bestT = t; best = k; }
        }
      }
      var r, g, b;
      if (best >= 0) {
        var col = shade(dx * bestT, dy * bestT, dz * bestT, dx, dy, dz, best, 0);
        r = col.r; g = col.g; b = col.b;
      } else {
        // inlined gradient background
        var f = y / H;
        r = 30 + 40 * f; g = 40 + 60 * f; b = 90 + 120 * f;
      }
      var o = (y * W + x) * 4;
      data[o] = r > 255 ? 255 : r;
      data[o + 1] = g > 255 ? 255 : g;
      data[o + 2] = b > 255 ? 255 : b;
      data[o + 3] = 255;
    }
  }
  ctx.putImageData(img, 0, 0);
}

canvas.addEventListener("mousemove", function(ev) {
  frame++;
  spheres[0].x = Math.sin(frame * 0.7) + ev.clientX * 0.001;
  spheres[1].z = 4.2 + Math.cos(frame * 0.5) * 0.6;
  render();
  if (frame >= 5) { console.log("raytracer: frames", frame); }
});

render();
|}

let workload =
  Workload.make ~name:"Raytracing" ~url:"gist.github.com/jwagner/422755"
    ~category:"Games" ~description:"real-time raytracing demo"
    ~source ~session_ms:62_000.
    ~interactions:(Workload.mouse_path ~target_id:"rt-canvas"
                     ~event:"mousemove" ~t0:6_000. ~t1:54_000. ~n:5)
    ~dep_scale:0.4 ~hot_nest_count:1 ()
