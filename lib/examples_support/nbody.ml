(* The paper's Fig. 6 N-body walkthrough, packaged so both the
   `nbody` bench section and examples/nbody_analysis.exe can print it,
   and the integration tests can assert the exact characterizations of
   Sec. 3.3:

     write to variable p:      while(...) ok ok -> for(...) ok dependence
     writes to p.vX, com.m...: while(...) ok ok -> for(...) ok dependence
     reads of com.m/x/y:       while(...) ok ok -> for(...) ok dependence *)

(* Laid out so the hot [for] sits at line 6 and the [while] at line 24,
   approximating the listing's line numbers. *)
let source = {|function step() {
  computeForces();

  var com = new Particle();

  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];

    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;

    p.x += p.vX * dT;
    p.y += p.vY * dT;

    com.m = com.m + p.m;
    com.x = (com.x * com.m + p.x * p.m) / (com.m + p.m);
    com.y = (com.y * com.m + p.y * p.m) / (com.m + p.m);
  }
  return com;
}
var frames = 0;
var dT = 0.01;
while (frames < 5) {
  var com = step();
  display(bodies, com);
  frames++;
}
|}

(* Scene setup runs uninstrumented, as the browser state that exists
   before the analysis begins. *)
let setup = {|
function Particle() { this.m = 1; this.x = 0; this.y = 0; this.vX = 0; this.vY = 0; this.fX = 0; this.fY = 0; }
var bodies = [];
(function() {
  var k;
  for (k = 0; k < 8; k++) {
    var b = new Particle();
    b.x = k; b.y = -k; b.m = 1 + k;
    bodies.push(b);
  }
})();
function computeForces() {
  var a;
  for (a = 0; a < bodies.length; a++) { bodies[a].fX = 0.1 + 0.01 * a; bodies[a].fY = -0.1; }
}
function display(bs, c) { }
|}

type analysis = {
  infos : Jsir.Loops.info array;
  rt : Ceres.Runtime.t;
  for_loop : Jsir.Ast.loop_id;
  while_loop : Jsir.Ast.loop_id;
}

let analyze () : analysis =
  let st = Interp.Eval.create () in
  Interp.Builtins.install st;
  Interp.Eval.run_program st (Jsir.Parser.parse_program setup);
  let program = Jsir.Parser.parse_program source in
  let infos = Jsir.Loops.index program in
  let rt = Ceres.Install.dependence st infos in
  let instrumented =
    Ceres.Instrument.program Ceres.Instrument.Dependence program
  in
  Interp.Eval.run_program st instrumented;
  (* The program has exactly three loops: computeForces' is in setup;
     here loop 0 is the for inside step, loop 1 the driving while. *)
  { infos; rt; for_loop = 0; while_loop = 1 }

let report () =
  let a = analyze () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Ceres.Report.dependence_report
       ~title:"JS-CERES dependence analysis of the N-body example" a.rt
       a.infos);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Ceres.Report.nest_report a.rt a.infos ~root:a.for_loop);
  Buffer.add_string buf
    "\npaper (Sec 3.3) reports, for the same example:\n\
    \  write to variable p:           while ok ok -> for ok dependence\n\
    \  writes to p.vX/p.vY/p.x/p.y,\n\
    \  com.m/com.x/com.y:             while ok ok -> for ok dependence\n\
    \  reads of com.m/com.x/com.y:    while ok ok -> for ok dependence\n\
    \  (flow, i.e. true, dependences between the loop iterations)\n";
  Buffer.contents buf
