(** Per-loop verdict of the static parallelizability analysis.

    The lattice runs [Parallel < Reduction < Needs_runtime_check <
    Sequential]; the first two are proofs valid for every execution
    (soundness: the dynamic analyzer may never observe an
    iteration-carried triple on such a loop), the third is an honest
    "inconclusive, speculate at runtime", the last a demonstrated
    dependence or I/O. *)

type dep = { what : string; line : int }
type reason = { why : string; line : int }

type t =
  | Parallel
  | Reduction of string list  (** accumulator variables, sorted *)
  | Needs_runtime_check of reason list
  | Sequential of dep list

val kind_name : t -> string
(** ["parallel" | "reduction" | "needs-runtime-check" | "sequential"] *)

val is_proven : t -> bool
(** [Parallel] and [Reduction] only. *)

val to_string : t -> string
val to_json : t -> string
val json_escape : string -> string
