(** Workload model: one record per case-study application (Table 1).

    A workload is a self-contained MiniJS program that builds its own
    DOM, registers listeners, and drives itself with timers; the
    harness scripts the user interaction of the paper's Fig. 5 step 4
    as DOM events at virtual timestamps. Programs read the global
    [SCALE] to size their data. *)

type interaction = {
  at_ms : float; (** absolute virtual time *)
  target_id : string; (** element id; events on missing ids are dropped *)
  event : string; (** "click", "mousemove", "keydown", ... *)
  x : float;
  y : float;
}

type t = {
  name : string;
  url : string;
  category : string;
  description : string;
  source : string; (** the MiniJS program *)
  session_ms : float; (** scripted session length (Table 2 "Total") *)
  interactions : interaction list;
  dep_scale : float; (** [SCALE] for the expensive dependence pass *)
  hot_nest_count : int; (** Table 3 rows the paper reports for the app *)
}

val make :
  name:string ->
  url:string ->
  category:string ->
  description:string ->
  source:string ->
  session_ms:float ->
  ?interactions:interaction list ->
  ?dep_scale:float ->
  ?hot_nest_count:int ->
  unit ->
  t

val mouse_path :
  target_id:string ->
  event:string ->
  t0:float ->
  t1:float ->
  n:int ->
  interaction list
(** [n] events tracing a deterministic diagonal wiggle between [t0] and
    [t1]. *)

val clicks : target_id:string -> times:float list -> interaction list
