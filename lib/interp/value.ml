(* Runtime values for the MiniJS interpreter.

   The representation follows JavaScript's object model closely enough
   for the paper's analysis to be meaningful:
   - objects are mutable property maps with a prototype link;
   - arrays are objects with a dense element store and a live [length];
   - functions are objects with an attached callable (closure or host
     function), so they can carry properties ([prototype] in
     particular) and be constructed with [new];
   - every object carries a unique [oid]; JS-CERES keys its
     creation-site stamps and per-property write snapshots on it.

   Scopes implement [var] function scoping: one {!scope} per function
   invocation (plus the global scope), each with a unique [sid] that
   the dependence analysis stamps at creation. *)

type value =
  | Num of float
  | Str of string
  | Bool of bool
  | Undefined
  | Null
  | Obj of obj

and obj = {
  oid : int;
  props : (string, value) Hashtbl.t;
  mutable key_order : string list; (* reversed insertion order *)
  mutable proto : obj option;
  mutable call : callable option;
  mutable arr : arr_data option;
  mutable host_tag : string option;
      (* host-object discriminator, e.g. "canvas-context" *)
}

and arr_data = { mutable elems : value array; mutable len : int }

and callable =
  | Closure of closure
  | Host of string * host_fn

and closure = { fn : Jsir.Ast.func; captured : scope }

and host_fn = state -> value -> value list -> value
(* state, this, arguments *)

and scope = {
  sid : int;
  vars : (string, cell) Hashtbl.t;
      (* dynamic side table: catch parameters, wrapper bindings,
         implicit globals, and every binding of an unresolved frame *)
  parent : scope option;
  mutable ltab : (string, int) Hashtbl.t option;
      (* slot layout of this frame: name -> slot. Function frames share
         their layout's table read-only; the global scope owns a
         mutable one accumulated across programs. [None] = dynamic
         scope (wrapper, or frame of an unresolved function). A name is
         either slotted or in [vars], never both. *)
  mutable slots : value array; (* slot-indexed activation record *)
  mutable syms : int array; (* slot -> interned symbol, for the runtime *)
  mutable fup : scope option;
      (* enclosing slotted frame (wrapper scopes skipped); the lexical
         [depth] in a resolved address counts [fup] hops *)
}

and cell = { mutable v : value }

and state = {
  clock : Ceres_util.Vclock.t;
  prng : Ceres_util.Prng.t;
  symtab : Ceres_util.Symbol.table;
      (* the state's interned names; programs are resolved against it
         by [Eval.run_program] *)
  mutable global_scope : scope;
  mutable global_obj : obj;
  mutable object_proto : obj;
  mutable array_proto : obj;
  mutable function_proto : obj;
  mutable string_proto : obj;
  mutable number_proto : obj;
  mutable error_proto : obj;
  mutable next_oid : int;
  mutable next_sid : int;
  mutable call_depth : int;
  max_call_depth : int;
  mutable budget : int64; (* max busy vticks; raise Budget_exhausted past it *)
  mutable console : string list; (* reversed log of console output *)
  mutable echo_console : bool;
  intrinsics : (string, intrinsic) Hashtbl.t;
  mutable intrinsic_fast : intrinsic option array;
      (* dispatch cache indexed by the intrinsic name's symbol
         ([expr.lex]); cleared whenever a handler is (re)registered *)
  (* instrumentation and embedding hooks *)
  mutable on_scope_create : scope -> unit;
  mutable on_call_enter : string option -> unit;
  mutable on_call_exit : unit -> unit;
  mutable on_host_access : string -> string -> unit;
      (* category (e.g. "dom"), operation *)
  mutable on_tick : (int -> unit) option;
      (* fault-injection probe called on every clock advance; [None]
         (the default) keeps the hot path a single load + branch *)
  mutable on_call_site : int -> value -> int -> unit;
      (* source line of a call site, callee value, argument count *)
  mutable apply : state -> value -> value -> value list -> value;
      (* callback into the evaluator, installed by [Eval.create] *)
  mutable events : event list; (* pending timer queue, kept sorted *)
  mutable next_event_seq : int;
  mutable host_time_reads : int;
      (* Date.now / performance.now calls observed; a parallel-loop
         chunk that reads the clock is not deterministic and aborts *)
  mutable on_loop : (state -> scope -> value -> loop_visit -> bool) option;
      (* consulted by [Eval] when a [For] loop is entered (after its
         init clause ran): [true] = the hook executed the whole loop
         itself (the parallel-execution path), [false] = proceed
         sequentially. [None] keeps loop entry a single load. *)
}

and loop_visit = {
  lv_id : int; (* Jsir loop id, matching Jsir.Loops.info.id *)
  lv_cond : Jsir.Ast.expr option;
  lv_update : Jsir.Ast.expr option;
  lv_body : Jsir.Ast.stmt;
}

and intrinsic = state -> scope -> value -> Jsir.Ast.expr list -> value
(* state, lexical scope, this, UNevaluated argument expressions: the
   analysis runtime controls evaluation order so wrapped operations
   evaluate their operands exactly once. *)

and event = {
  due : int64; (* vclock time, in vticks *)
  seq : int;
  callback : value;
  args : value list;
}

exception Js_throw of value
(** A JavaScript exception in flight ([throw] / host-raised errors). *)

exception Budget_exhausted
(** The interpreter exceeded its busy-tick budget. *)

let () =
  Printexc.register_printer (function
    | Budget_exhausted ->
      Some "interpreter vclock budget exhausted (watchdog: possible runaway loop)"
    | _ -> None)

let type_of = function
  | Num _ -> "number"
  | Str _ -> "string"
  | Bool _ -> "boolean"
  | Undefined -> "undefined"
  | Null -> "object"
  | Obj o -> if o.call <> None then "function" else "object"

(* ------------------------------------------------------------------ *)
(* Object primitives                                                   *)

let fresh_oid st =
  let oid = st.next_oid in
  st.next_oid <- st.next_oid + 1;
  oid

let make_obj ?proto st =
  { oid = fresh_oid st;
    props = Hashtbl.create 8;
    key_order = [];
    proto = (match proto with Some p -> p | None -> Some st.object_proto);
    call = None;
    arr = None;
    host_tag = None }

let make_array st values =
  let o = make_obj ~proto:(Some st.array_proto) st in
  let n = Array.length values in
  let cap = max 8 n in
  let elems = Array.make cap Undefined in
  Array.blit values 0 elems 0 n;
  o.arr <- Some { elems; len = n };
  o

let make_function st call =
  let o = make_obj ~proto:(Some st.function_proto) st in
  o.call <- Some call;
  o

let make_host_fn st name fn = make_function st (Host (name, fn))

let is_array o = o.arr <> None

(* Canonical array index of a property key, allocation- and
   exception-free. Matches the round-trip check
   [int_of_string_opt key = Some i && string_of_int i = key]: plain
   decimal digits, no leading zero (except "0" itself), no sign. *)
let array_index_of_key key =
  let n = String.length key in
  if n = 0 || n > 18 || (n > 1 && String.unsafe_get key 0 = '0') then None
  else begin
    let rec go i acc =
      if i = n then Some acc
      else
        let c = Char.code (String.unsafe_get key i) - Char.code '0' in
        if c >= 0 && c <= 9 then go (i + 1) ((acc * 10) + c) else None
    in
    go 0 0
  end

let raw_set_prop o key v =
  if not (Hashtbl.mem o.props key) then o.key_order <- key :: o.key_order;
  Hashtbl.replace o.props key v

let raw_get_own o key = Hashtbl.find_opt o.props key

let raw_delete_prop o key =
  if Hashtbl.mem o.props key then begin
    Hashtbl.remove o.props key;
    o.key_order <- List.filter (fun k -> not (String.equal k key)) o.key_order;
    true
  end
  else true (* deleting a missing property succeeds in JS *)

let own_keys o =
  let named = List.rev o.key_order in
  match o.arr with
  | None -> named
  | Some a ->
    let idx = List.init a.len string_of_int in
    idx @ named

(* Grow an array store to hold index [i]. *)
let ensure_capacity a i =
  let cap = Array.length a.elems in
  if i >= cap then begin
    let ncap = max (i + 1) (max 8 (2 * cap)) in
    let elems = Array.make ncap Undefined in
    Array.blit a.elems 0 elems 0 a.len;
    a.elems <- elems
  end

let array_set_length a n =
  if n < a.len then begin
    (* truncate, clearing dropped slots so they can be collected *)
    for i = n to a.len - 1 do
      a.elems.(i) <- Undefined
    done;
    a.len <- n
  end
  else if n > a.len then begin
    ensure_capacity a (n - 1);
    a.len <- n
  end

(* Prototype-chain property lookup on a bare object. The index parse
   runs only for actual arrays. *)
let rec get_prop_obj o key =
  match o.arr with
  | Some a ->
    (match array_index_of_key key with
     | Some i -> if i < a.len then a.elems.(i) else lookup_chain o key
     | None ->
       if String.equal key "length" then Num (float_of_int a.len)
       else lookup_chain o key)
  | None -> lookup_chain o key

and lookup_chain o key =
  match raw_get_own o key with
  | Some v -> v
  | None ->
    (match o.proto with
     | Some p -> get_prop_obj p key
     | None -> Undefined)

let array_store_set a i v =
  ensure_capacity a i;
  a.elems.(i) <- v;
  if i >= a.len then a.len <- i + 1

let set_prop_obj o key v =
  match o.arr with
  | Some a ->
    (match array_index_of_key key with
     | Some i -> array_store_set a i v
     | None ->
       if String.equal key "length" then
         match v with
         | Num f when Float.is_integer f && f >= 0. ->
           array_set_length a (int_of_float f)
         | _ -> raise (Js_throw (Str "Invalid array length"))
       else raw_set_prop o key v)
  | None -> raw_set_prop o key v

let has_prop_obj o key =
  let rec chain o =
    Hashtbl.mem o.props key
    || (match o.proto with Some p -> chain p | None -> false)
  in
  (match o.arr with
   | Some a ->
     (match array_index_of_key key with
      | Some i -> i < a.len
      | None -> String.equal key "length")
   | None -> false)
  || chain o

(* ------------------------------------------------------------------ *)
(* Coercions                                                           *)

let to_boolean = function
  | Bool b -> b
  | Num f -> not (f = 0. || Float.is_nan f)
  | Str s -> String.length s > 0
  | Undefined | Null -> false
  | Obj _ -> true

let number_of_string s =
  let s = String.trim s in
  if s = "" then 0.
  else
    match float_of_string_opt s with
    | Some f -> f
    | None ->
      (* JS also accepts 0x literals; float_of_string already does. *)
      Float.nan

(* String conversion may need to call a user [toString]; the [st]
   parameter provides [apply] for that. *)
let rec to_string st v =
  match v with
  | Str s -> s
  | Num f -> Jsir.Printer.number_to_string f
  | Bool b -> if b then "true" else "false"
  | Undefined -> "undefined"
  | Null -> "null"
  | Obj o ->
    (match get_prop_obj o "toString" with
     | Obj f when f.call <> None ->
       (match st.apply st (Obj f) v [] with
        | Obj _ -> default_obj_string st o
        | prim -> to_string st prim)
     | _ -> default_obj_string st o)

and default_obj_string st o =
  match o.arr with
  | Some a ->
    let parts =
      List.init a.len (fun i ->
          match a.elems.(i) with
          | Undefined | Null -> ""
          | v -> to_string st v)
    in
    String.concat "," parts
  | None -> if o.call <> None then "function () { [code] }" else "[object Object]"

let to_number st v =
  match v with
  | Num f -> f
  | Bool b -> if b then 1. else 0.
  | Str s -> number_of_string s
  | Null -> 0.
  | Undefined -> Float.nan
  | Obj _ -> number_of_string (to_string st v)

(* ToPrimitive with default hint, as needed by [+] and [==]. *)
let to_primitive st v =
  match v with
  | Obj _ -> Str (to_string st v)
  | prim -> prim

let two_pow_32 = 4294967296.

let to_int32 st v =
  let f = to_number st v in
  if Float.is_nan f || Float.abs f = Float.infinity then 0l
  else begin
    let m = Float.rem (Float.trunc f) two_pow_32 in
    let m = if m < 0. then m +. two_pow_32 else m in
    let m = if m >= two_pow_32 /. 2. then m -. two_pow_32 else m in
    Int32.of_float m
  end

let to_uint32 st v =
  let f = to_number st v in
  if Float.is_nan f || Float.abs f = Float.infinity then 0
  else begin
    let m = Float.rem (Float.trunc f) two_pow_32 in
    let m = if m < 0. then m +. two_pow_32 else m in
    int_of_float m
  end

(* Abstract equality (==), covering the coercion lattice our workloads
   exercise. *)
let rec abstract_eq st a b =
  match a, b with
  | Num x, Num y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Undefined, Undefined | Null, Null -> true
  | Undefined, Null | Null, Undefined -> true
  | Obj x, Obj y -> x.oid = y.oid
  | Num _, Str _ -> abstract_eq st a (Num (to_number st b))
  | Str _, Num _ -> abstract_eq st (Num (to_number st a)) b
  | Bool _, _ -> abstract_eq st (Num (to_number st a)) b
  | _, Bool _ -> abstract_eq st a (Num (to_number st b))
  | Obj _, (Num _ | Str _) -> abstract_eq st (to_primitive st a) b
  | (Num _ | Str _), Obj _ -> abstract_eq st a (to_primitive st b)
  | _ -> false

let strict_eq a b =
  match a, b with
  | Num x, Num y -> x = y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> x = y
  | Undefined, Undefined | Null, Null -> true
  | Obj x, Obj y -> x.oid = y.oid
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)

let fresh_scope st parent =
  let sid = st.next_sid in
  st.next_sid <- st.next_sid + 1;
  let scope =
    { sid; vars = Hashtbl.create 8; parent;
      ltab = None; slots = [||]; syms = [||]; fup = None }
  in
  st.on_scope_create scope;
  scope

(* Slot of [name] at this level only, or -1. *)
let scope_slot scope name =
  match scope.ltab with
  | None -> -1
  | Some t -> (match Hashtbl.find_opt t name with Some s -> s | None -> -1)

let declare scope name =
  if scope_slot scope name < 0 && not (Hashtbl.mem scope.vars name) then
    Hashtbl.replace scope.vars name { v = Undefined }

(* Where [name] lives, walking out from [scope]: the owning scope and
   its slot there (-1 = a dynamic cell in that scope's [vars]). *)
let rec var_home scope name =
  if Hashtbl.length scope.vars > 0 && Hashtbl.mem scope.vars name then
    Some (scope, -1)
  else
    let s = scope_slot scope name in
    if s >= 0 then Some (scope, s)
    else
      match scope.parent with
      | Some p -> var_home p name
      | None -> None

let var_exists scope name = var_home scope name <> None

let owner_scope scope name =
  match var_home scope name with Some (s, _) -> Some s | None -> None

let scope_read scope slot name =
  if slot >= 0 then scope.slots.(slot)
  else (Hashtbl.find scope.vars name).v

let scope_write scope slot name v =
  if slot >= 0 then scope.slots.(slot) <- v
  else (Hashtbl.find scope.vars name).v <- v

let get_var st scope name =
  match var_home scope name with
  | Some (s, slot) -> scope_read s slot name
  | None ->
    (* Fall back to global-object properties (host globals live there). *)
    if has_prop_obj st.global_obj name then get_prop_obj st.global_obj name
    else
      raise
        (Js_throw (Str (Printf.sprintf "ReferenceError: %s is not defined" name)))

let set_var st scope name v =
  match var_home scope name with
  | Some (s, slot) -> scope_write s slot name v
  | None ->
    (* Implicit global, as in sloppy-mode JS. *)
    declare st.global_scope name;
    (match Hashtbl.find_opt st.global_scope.vars name with
     | Some cell -> cell.v <- v
     | None -> assert false)

(* ------------------------------------------------------------------ *)
(* Resolved (lexically addressed) variable access: no string hashing.
   [lex] packs [(depth, slot)]; the resolver only emits addresses whose
   frame provably exists, so the walk cannot fail. *)

let rec frame_up scope n =
  if n = 0 then scope
  else
    match scope.fup with
    | Some s -> frame_up s (n - 1)
    | None -> invalid_arg "frame_up: unresolved frame chain"

let get_lex st scope lex =
  let depth = lex land 0xFFF in
  let slot = lex lsr 12 in
  if depth = 0xFFF then Array.unsafe_get st.global_scope.slots slot
  else (frame_up scope depth).slots.(slot)

let set_lex st scope lex v =
  let depth = lex land 0xFFF in
  let slot = lex lsr 12 in
  if depth = 0xFFF then Array.unsafe_set st.global_scope.slots slot v
  else (frame_up scope depth).slots.(slot) <- v

let register_intrinsic st name fn =
  Hashtbl.replace st.intrinsics name fn;
  st.intrinsic_fast <- [||]

(* ------------------------------------------------------------------ *)
(* Error helpers                                                       *)

let throw_error st kind msg =
  let o = make_obj ~proto:(Some st.error_proto) st in
  raw_set_prop o "name" (Str kind);
  raw_set_prop o "message" (Str msg);
  raise (Js_throw (Obj o))

let type_error st msg = throw_error st "TypeError" msg
