(** JSON builtin: [JSON.stringify] and [JSON.parse].

    ECMAScript semantics for the common cases: [undefined] and
    functions are dropped from objects and become [null] in arrays,
    non-finite numbers stringify as [null], cyclic structures throw a
    TypeError, and [parse] rejects trailing input with a SyntaxError. *)

val install : Value.state -> unit
(** Installed by {!Builtins.install}. *)

val stringify_value :
  Value.state -> seen:int list -> Value.value -> string option
(** [None] for values JSON omits (undefined, functions).
    @raise Cycle on cyclic structures (internal; the JS-facing
    [JSON.stringify] converts it to a TypeError). *)

exception Cycle
