(** Order-insensitivity proofs for reduction accumulators.

    Decides whether per-chunk partials of [acc = acc op e] may be
    combined in any grouping bit-exactly: min/max/bitwise always;
    [+] when {!Range} proves every contribution an exact integer of
    bounded magnitude; [*] and opaque ops never. *)

open Jsir

val sum_addend_bound : float
(** Magnitude bound (2^25) on addends of a provably-exact [+]
    reduction; chosen so the executor's 1e8 trip cap keeps every
    partial under 2^53. *)

val order_insensitive :
  Range.t ->
  Scope.fid ->
  env:(string -> Range.iv option) ->
  op:Verdict.acc_op ->
  contribs:Ast.expr list ->
  bool
