(* processing.js — interactive spiral visual effect (Table 1,
   "Visualization").

   Processing sketches call small helpers per particle per frame; the
   paper's profile shows the signature clearly: ~55k loop *instances*
   with ~4 trips each, spread over four small nests. We run a spiral
   of ~450 particles, each with a 4-point trail: per frame and per
   particle, a trail-shift loop, a trail-physics loop, a draw loop
   (canvas inside — the paper marks that nest DOM "yes"), and a color
   loop. *)

let source = {|
var COUNT = Math.floor(140 * SCALE) + 30;
var TRAIL = 4;

var canvas = document.createElement("canvas");
canvas.width = 200; canvas.height = 200;
canvas.id = "processing-canvas";
document.body.appendChild(canvas);
var ctx = canvas.getContext("2d");

var particles = [];
var frame = 0;

(function setup() {
  var i;
  for (i = 0; i < COUNT; i++) {
    var trailX = [];
    var trailY = [];
    var t;
    for (t = 0; t < TRAIL; t++) { trailX.push(100); trailY.push(100); }
    particles.push({
      angle: i * 0.137,
      radius: 2 + (i % 80),
      speed: 0.02 + (i % 7) * 0.004,
      trailX: trailX,
      trailY: trailY,
      shade: [0, 0, 0]
    });
  }
})();

// nest 1: shift the trail history (4 trips, per particle per frame)
function shiftTrail(p) {
  var t;
  for (t = TRAIL - 1; t > 0; t--) {
    p.trailX[t] = p.trailX[t - 1];
    p.trailY[t] = p.trailY[t - 1];
  }
}

// nest 2: trail relaxation toward the head (4 trips)
function relaxTrail(p) {
  var t;
  for (t = 1; t < TRAIL; t++) {
    p.trailX[t] += (p.trailX[t - 1] - p.trailX[t]) * 0.4;
    p.trailY[t] += (p.trailY[t - 1] - p.trailY[t]) * 0.4;
  }
}

// nest 3: draw the trail (canvas inside the loop)
function drawTrail(p) {
  ctx.beginPath();
  var t;
  for (t = 0; t < TRAIL - 1; t++) {
    ctx.moveTo(p.trailX[t], p.trailY[t]);
    ctx.lineTo(p.trailX[t + 1], p.trailY[t + 1]);
  }
  ctx.stroke();
}

// nest 4: color cycling (3 trips)
function cycleShade(p) {
  var c;
  for (c = 0; c < 3; c++) {
    p.shade[c] = (p.shade[c] + p.radius + c * 40) % 256;
  }
}

function tick() {
  frame++;
  if (frame % 4 === 1) { ctx.clearRect(0, 0, 200, 200); }
  // Processing-style: iterate particles with a functional operator;
  // only the small per-particle helpers contain syntactic loops.
  particles.forEach(function(p, i) {
    // flow-field steering: straight-line math, no loops
    p.angle += p.speed;
    var fx = Math.cos(p.angle * 1.7) * Math.sin(p.angle * 0.9);
    var fy = Math.sin(p.angle * 1.3) * Math.cos(p.angle * 0.7);
    var swirl = Math.atan2(fy, fx);
    var pulse = 1 + 0.2 * Math.sin(frame * 0.21 + i * 0.05);
    var wobble = Math.cos(swirl * 2.3) * 0.5 + Math.sin(swirl * 3.1) * 0.3;
    var drag = 1 - 0.04 * Math.exp(-Math.abs(wobble));
    var lift = Math.sin(p.angle * 0.5 + swirl) * Math.cos(frame * 0.03);
    var shear = Math.atan2(lift + 0.001, wobble + 0.001) * 0.2;
    var bias = Math.sqrt(Math.abs(fx * fy) + 0.01) * (lift > 0 ? 1 : -1);
    p.radius = (2 + ((i % 80) + wobble * 4 + bias * 2) * pulse) * drag;
    p.speed = 0.02 + (i % 7) * 0.004 + 0.002 * Math.sin(swirl) + shear * 0.001;
    shiftTrail(p);
    p.trailX[0] = 100 + Math.cos(p.angle) * p.radius;
    p.trailY[0] = 100 + Math.sin(p.angle) * p.radius;
    relaxTrail(p);
    cycleShade(p);
    if (i % 25 === 0) { drawTrail(p); }
  });
  if (frame < 28) { requestAnimationFrame(tick); }
  else { console.log("processing: frames", frame, "particles", particles.length); }
}

requestAnimationFrame(tick);
|}

let workload =
  Workload.make ~name:"processing.js" ~url:"processingjs.org"
    ~category:"Visualization"
    ~description:"interactive spiral visual effect"
    ~source ~session_ms:21_000. ~dep_scale:0.6 ~hot_nest_count:4 ()
