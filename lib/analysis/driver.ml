(* Entry point of the static analyzer: run the three stages over a
   program and render per-loop reports.

   Renderings are deterministic — rows ordered by loop id, detail
   lists sorted and deduplicated by the verdict layer — because the
   JSON output is compared byte-for-byte against committed golden
   files and across repeated runs. The CLI and the test suite share
   these exact functions. *)

open Jsir

type row = {
  info : Loops.info;
  verdict : Verdict.t;
  notes : string list;
}

type report = { rows : row list (* sorted by loop id *) }

let analyze (prog : Ast.program) : report =
  let scope = Scope.resolve_program prog in
  let fx = Effects.infer scope in
  let results = Loopdep.analyze_program fx prog in
  let infos = Loops.index prog in
  let rows =
    List.map
      (fun (r : Loopdep.result) ->
         { info = Loops.find infos r.loop_id;
           verdict = r.verdict;
           notes = r.notes })
      results
  in
  { rows }

let verdict_of (rep : report) (id : Ast.loop_id) : Verdict.t option =
  List.find_map
    (fun r -> if r.info.Loops.id = id then Some r.verdict else None)
    rep.rows

let any_sequential (rep : report) =
  List.exists
    (fun r ->
       match r.verdict with Verdict.Sequential _ -> true | _ -> false)
    rep.rows

let proven (rep : report) =
  List.filter (fun r -> Verdict.is_proven r.verdict) rep.rows

(* ------------------------------------------------------------------ *)

let row_header (r : row) =
  let fn =
    match r.info.Loops.in_function with
    | Some f -> Printf.sprintf " in %s" f
    | None -> ""
  in
  Printf.sprintf "%s%s" (Loops.label r.info) fn

let to_text (rep : report) : string =
  let buf = Buffer.create 512 in
  List.iter
    (fun r ->
       Buffer.add_string buf (String.make (2 * r.info.Loops.depth) ' ');
       Buffer.add_string buf (row_header r);
       Buffer.add_string buf ": ";
       Buffer.add_string buf (Verdict.to_string r.verdict);
       if r.notes <> [] then begin
         Buffer.add_string buf " [";
         Buffer.add_string buf (String.concat " " r.notes);
         Buffer.add_char buf ']'
       end;
       Buffer.add_char buf '\n')
    rep.rows;
  Buffer.contents buf

(* Uniform row shape so goldens diff cleanly: every row carries
   [accumulators], [reductions], [war_roots], [details] and [notes],
   empty when inapplicable. [details] is the ranked why-not chain:
   each blocking fact with the pass that produced it. *)
let json_of_report (rep : report) : Ceres_util.Json.t =
  let open Ceres_util.Json in
  let details (facts : Verdict.fact list) =
    List
      (List.map
         (fun (f : Verdict.fact) ->
            Obj
              [ ("text", Str f.why);
                ("line", Int f.line);
                ("pass", Str f.pass) ])
         facts)
  in
  Obj
    [ ( "loops",
        List
          (List.map
             (fun r ->
                let reds =
                  match r.verdict with
                  | Verdict.Reduction { accs; _ } ->
                    List.map
                      (fun (a : Verdict.acc) ->
                         Obj
                           [ ("name", Str a.aname);
                             ("op", Str (Verdict.op_name a.op));
                             ("order_insensitive", Bool a.order_insensitive)
                           ])
                      accs
                  | _ -> []
                in
                Obj
                  [ ("id", Int r.info.Loops.id);
                    ("kind", Str (Ast.loop_kind_name r.info.Loops.kind));
                    ("line", Int r.info.Loops.line);
                    ("depth", Int r.info.Loops.depth);
                    ( "parent",
                      match r.info.Loops.parent with
                      | Some p -> Int p
                      | None -> Null );
                    ( "function",
                      match r.info.Loops.in_function with
                      | Some f -> Str f
                      | None -> Null );
                    ("verdict", Str (Verdict.kind_name r.verdict));
                    ( "accumulators",
                      List
                        (List.map
                           (fun a -> Str a)
                           (Verdict.acc_names r.verdict)) );
                    ("reductions", List reds);
                    ( "war_roots",
                      List
                        (List.map
                           (fun w -> Str w)
                           (Verdict.war_roots r.verdict)) );
                    ("details", details (Verdict.facts r.verdict));
                    ("notes", List (List.map (fun n -> Str n) r.notes)) ])
             rep.rows) ) ]

let to_json (rep : report) : string =
  Ceres_util.Json.to_string_pretty (json_of_report rep)
