(* Dedup + fan-out. First occurrence order decides execution order so
   a batch is deterministic regardless of scheduling (the pool only
   changes *when* each distinct request runs, not which ones run). *)

let run ?pool ~key ~exec reqs =
  let slot_of_key : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let distinct = ref [] and n = ref 0 in
  let slots =
    List.map
      (fun req ->
         let k = key req in
         match Hashtbl.find_opt slot_of_key k with
         | Some slot -> slot
         | None ->
           let slot = !n in
           Hashtbl.add slot_of_key k slot;
           distinct := req :: !distinct;
           incr n;
           slot)
      reqs
  in
  let distinct = Array.of_list (List.rev !distinct) in
  let results = Array.make (Array.length distinct) None in
  (match pool with
   | Some p when Array.length distinct > 1 ->
     Js_parallel.Pool.parallel_for p ~lo:0 ~hi:(Array.length distinct)
       ~chunk:1
       (fun i -> results.(i) <- Some (exec distinct.(i)))
   | _ ->
     Array.iteri (fun i req -> results.(i) <- Some (exec req)) distinct);
  List.map (fun slot -> Option.get results.(slot)) slots
