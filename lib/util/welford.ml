type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; sum = 0.; min_v = nan; max_v = nan }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  let delta2 = x -. t.mean in
  t.m2 <- t.m2 +. (delta *. delta2);
  if t.n = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)

let population_variance t =
  if t.n = 0 then 0. else t.m2 /. float_of_int t.n

let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let copy t =
  { n = t.n; mean = t.mean; m2 = t.m2; sum = t.sum;
    min_v = t.min_v; max_v = t.max_v }

let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let n = a.n + b.n in
    let fn = float_of_int n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. float_of_int b.n /. fn) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. fn)
    in
    { n;
      mean;
      m2;
      sum = a.sum +. b.sum;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v }
  end

let reset t =
  t.n <- 0;
  t.mean <- 0.;
  t.m2 <- 0.;
  t.sum <- 0.;
  t.min_v <- nan;
  t.max_v <- nan

let pp ppf t =
  Format.fprintf ppf "%.3g±%.2g (n=%d)" (mean t) (stddev t) t.n
