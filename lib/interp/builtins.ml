(* Global environment: Math, Array/String/Object/Function prototypes,
   console, timers and the high-resolution timer the paper's
   instrumentation uses ([performance.now], reference [4] in the
   paper). Everything is a host function over {!Value.state}; none of
   it allocates outside the interpreter heap, so instrumented and
   uninstrumented runs see the same object graph. *)

open Value

let arg n args = match List.nth_opt args n with Some v -> v | None -> Undefined
let num_arg st n args = to_number st (arg n args)
let str_arg st n args = to_string st (arg n args)

let int_arg st n args =
  let f = num_arg st n args in
  if Float.is_nan f then 0 else int_of_float f

let define obj name v = raw_set_prop obj name v

let define_fn st obj name fn = define obj name (Obj (make_host_fn st name fn))

let array_of st v =
  match v with
  | Obj ({ arr = Some a; _ } as o) -> (o, a)
  | _ -> type_error st "receiver is not an array"

(* Call back into JS through the evaluator. *)
let invoke st fn this args = st.apply st fn this args

(* ------------------------------------------------------------------ *)

let install_math st =
  let math = make_obj st in
  define math "PI" (Num Float.pi);
  define math "E" (Num (Float.exp 1.));
  define math "LN2" (Num (Float.log 2.));
  define math "SQRT2" (Num (Float.sqrt 2.));
  let unary name f =
    define_fn st math name (fun st _ args -> Num (f (num_arg st 0 args)))
  in
  unary "abs" Float.abs;
  unary "floor" Float.floor;
  unary "ceil" Float.ceil;
  unary "sqrt" Float.sqrt;
  unary "sin" sin;
  unary "cos" cos;
  unary "tan" tan;
  unary "asin" asin;
  unary "acos" acos;
  unary "atan" atan;
  unary "exp" exp;
  unary "log" log;
  unary "round" (fun f -> Float.floor (f +. 0.5));
  unary "trunc" Float.trunc;
  unary "log10" log10;
  unary "sign" (fun f ->
      if Float.is_nan f then Float.nan
      else if f > 0. then 1.
      else if f < 0. then -1.
      else f);
  define_fn st math "atan2" (fun st _ args ->
      Num (Float.atan2 (num_arg st 0 args) (num_arg st 1 args)));
  define_fn st math "pow" (fun st _ args ->
      Num (Float.pow (num_arg st 0 args) (num_arg st 1 args)));
  define_fn st math "min" (fun st _ args ->
      Num
        (List.fold_left
           (fun acc v -> Float.min acc (to_number st v))
           Float.infinity args));
  define_fn st math "max" (fun st _ args ->
      Num
        (List.fold_left
           (fun acc v -> Float.max acc (to_number st v))
           Float.neg_infinity args));
  define_fn st math "random" (fun st _ _ -> Num (Ceres_util.Prng.float st.prng));
  define st.global_obj "Math" (Obj math)

(* ------------------------------------------------------------------ *)

let install_array st =
  let proto = st.array_proto in
  define_fn st proto "push" (fun st this args ->
      let _, a = array_of st this in
      List.iter
        (fun v ->
           ensure_capacity a a.len;
           a.elems.(a.len) <- v;
           a.len <- a.len + 1)
        args;
      Num (float_of_int a.len));
  define_fn st proto "pop" (fun st this _ ->
      let _, a = array_of st this in
      if a.len = 0 then Undefined
      else begin
        let v = a.elems.(a.len - 1) in
        a.elems.(a.len - 1) <- Undefined;
        a.len <- a.len - 1;
        v
      end);
  define_fn st proto "shift" (fun st this _ ->
      let _, a = array_of st this in
      if a.len = 0 then Undefined
      else begin
        let v = a.elems.(0) in
        Array.blit a.elems 1 a.elems 0 (a.len - 1);
        a.elems.(a.len - 1) <- Undefined;
        a.len <- a.len - 1;
        v
      end);
  define_fn st proto "unshift" (fun st this args ->
      let _, a = array_of st this in
      let extra = List.length args in
      ensure_capacity a (a.len + extra - 1);
      Array.blit a.elems 0 a.elems extra a.len;
      List.iteri (fun i v -> a.elems.(i) <- v) args;
      a.len <- a.len + extra;
      Num (float_of_int a.len));
  define_fn st proto "indexOf" (fun st this args ->
      let _, a = array_of st this in
      let needle = arg 0 args in
      let rec go i =
        if i >= a.len then -1
        else if strict_eq a.elems.(i) needle then i
        else go (i + 1)
      in
      Num (float_of_int (go 0)));
  define_fn st proto "lastIndexOf" (fun st this args ->
      let _, a = array_of st this in
      let needle = arg 0 args in
      let rec go i =
        if i < 0 then -1
        else if strict_eq a.elems.(i) needle then i
        else go (i - 1)
      in
      Num (float_of_int (go (a.len - 1))));
  define_fn st proto "join" (fun st this args ->
      let _, a = array_of st this in
      let sep = match arg 0 args with Undefined -> "," | v -> to_string st v in
      let parts =
        List.init a.len (fun i ->
            match a.elems.(i) with
            | Undefined | Null -> ""
            | v -> to_string st v)
      in
      Str (String.concat sep parts));
  define_fn st proto "slice" (fun st this args ->
      let _, a = array_of st this in
      let clamp i = max 0 (min a.len i) in
      let norm i = if i < 0 then clamp (a.len + i) else clamp i in
      let start = match arg 0 args with Undefined -> 0 | v -> norm (int_of_float (to_number st v)) in
      let stop = match arg 1 args with Undefined -> a.len | v -> norm (int_of_float (to_number st v)) in
      let n = max 0 (stop - start) in
      Obj (make_array st (Array.init n (fun i -> a.elems.(start + i)))));
  define_fn st proto "concat" (fun st this args ->
      let _, a = array_of st this in
      let items = ref [] in
      for i = a.len - 1 downto 0 do
        items := a.elems.(i) :: !items
      done;
      let tail =
        List.concat_map
          (fun v ->
             match v with
             | Obj { arr = Some b; _ } ->
               List.init b.len (fun i -> b.elems.(i))
             | v -> [ v ])
          args
      in
      Obj (make_array st (Array.of_list (!items @ tail))));
  define_fn st proto "reverse" (fun st this _ ->
      let o, a = array_of st this in
      let n = a.len in
      for i = 0 to (n / 2) - 1 do
        let tmp = a.elems.(i) in
        a.elems.(i) <- a.elems.(n - 1 - i);
        a.elems.(n - 1 - i) <- tmp
      done;
      Obj o);
  define_fn st proto "splice" (fun st this args ->
      let _, a = array_of st this in
      let norm i = if i < 0 then max 0 (a.len + i) else min a.len i in
      let start = norm (int_arg st 0 args) in
      let count =
        match arg 1 args with
        | Undefined -> a.len - start
        | v -> max 0 (min (a.len - start) (int_of_float (to_number st v)))
      in
      let removed = Array.init count (fun i -> a.elems.(start + i)) in
      let inserted = match args with _ :: _ :: rest -> rest | _ -> [] in
      let nins = List.length inserted in
      let new_len = a.len - count + nins in
      ensure_capacity a (max a.len new_len);
      (* shift the tail *)
      let tail_len = a.len - (start + count) in
      if nins <> count then
        Array.blit a.elems (start + count) a.elems (start + nins) tail_len;
      List.iteri (fun i v -> a.elems.(start + i) <- v) inserted;
      for i = new_len to a.len - 1 do
        a.elems.(i) <- Undefined
      done;
      a.len <- new_len;
      Obj (make_array st removed));
  define_fn st proto "map" (fun st this args ->
      let o, a = array_of st this in
      let fn = arg 0 args in
      let out = Array.make a.len Undefined in
      for i = 0 to a.len - 1 do
        out.(i) <- invoke st fn Undefined
            [ a.elems.(i); Num (float_of_int i); Obj o ]
      done;
      Obj (make_array st out));
  define_fn st proto "forEach" (fun st this args ->
      let o, a = array_of st this in
      let fn = arg 0 args in
      for i = 0 to a.len - 1 do
        ignore (invoke st fn Undefined [ a.elems.(i); Num (float_of_int i); Obj o ])
      done;
      Undefined);
  define_fn st proto "filter" (fun st this args ->
      let o, a = array_of st this in
      let fn = arg 0 args in
      let out = ref [] in
      for i = a.len - 1 downto 0 do
        if
          to_boolean
            (invoke st fn Undefined [ a.elems.(i); Num (float_of_int i); Obj o ])
        then out := a.elems.(i) :: !out
      done;
      Obj (make_array st (Array.of_list !out)));
  define_fn st proto "reduce" (fun st this args ->
      let o, a = array_of st this in
      let fn = arg 0 args in
      let start, acc0 =
        match args with
        | _ :: init :: _ -> 0, init
        | _ ->
          if a.len = 0 then
            type_error st "reduce of empty array with no initial value";
          1, a.elems.(0)
      in
      let acc = ref acc0 in
      for i = start to a.len - 1 do
        acc :=
          invoke st fn Undefined
            [ !acc; a.elems.(i); Num (float_of_int i); Obj o ]
      done;
      !acc);
  define_fn st proto "some" (fun st this args ->
      let o, a = array_of st this in
      let fn = arg 0 args in
      let rec go i =
        i < a.len
        && (to_boolean
              (invoke st fn Undefined
                 [ a.elems.(i); Num (float_of_int i); Obj o ])
            || go (i + 1))
      in
      Bool (go 0));
  define_fn st proto "every" (fun st this args ->
      let o, a = array_of st this in
      let fn = arg 0 args in
      let rec go i =
        i >= a.len
        || (to_boolean
              (invoke st fn Undefined
                 [ a.elems.(i); Num (float_of_int i); Obj o ])
            && go (i + 1))
      in
      Bool (go 0));
  define_fn st proto "sort" (fun st this args ->
      let o, a = array_of st this in
      let cmp =
        match arg 0 args with
        | Obj { call = Some _; _ } as fn ->
          fun x y ->
            let r = to_number st (invoke st fn Undefined [ x; y ]) in
            if r < 0. then -1 else if r > 0. then 1 else 0
        | _ ->
          fun x y -> String.compare (to_string st x) (to_string st y)
      in
      let live = Array.sub a.elems 0 a.len in
      Array.sort cmp live;
      Array.blit live 0 a.elems 0 a.len;
      Obj o);
  define_fn st proto "toString" (fun st this _ ->
      match this with
      | Obj o -> Str (default_obj_string st o)
      | v -> Str (to_string st v));
  (* Array constructor *)
  let ctor =
    make_host_fn st "Array" (fun st _ args ->
        match args with
        | [ Num n ] when Float.is_integer n && n >= 0. ->
          Obj (make_array st (Array.make (int_of_float n) Undefined))
        | _ -> Obj (make_array st (Array.of_list args)))
  in
  define ctor "prototype" (Obj proto);
  define_fn st ctor "isArray" (fun _ _ args ->
      match arg 0 args with
      | Obj { arr = Some _; _ } -> Bool true
      | _ -> Bool false);
  define st.global_obj "Array" (Obj ctor)

(* ------------------------------------------------------------------ *)

let install_string st =
  let proto = st.string_proto in
  let receiver st this = to_string st this in
  define_fn st proto "charAt" (fun st this args ->
      let s = receiver st this in
      let i = int_arg st 0 args in
      if i >= 0 && i < String.length s then Str (String.make 1 s.[i])
      else Str "");
  define_fn st proto "charCodeAt" (fun st this args ->
      let s = receiver st this in
      let i = int_arg st 0 args in
      if i >= 0 && i < String.length s then Num (float_of_int (Char.code s.[i]))
      else Num Float.nan);
  define_fn st proto "indexOf" (fun st this args ->
      let s = receiver st this in
      let needle = str_arg st 0 args in
      let nl = String.length needle and sl = String.length s in
      let rec go i =
        if i + nl > sl then -1
        else if String.sub s i nl = needle then i
        else go (i + 1)
      in
      Num (float_of_int (go 0)));
  define_fn st proto "slice" (fun st this args ->
      let s = receiver st this in
      let len = String.length s in
      let norm i = if i < 0 then max 0 (len + i) else min len i in
      let start = match arg 0 args with Undefined -> 0 | v -> norm (int_of_float (to_number st v)) in
      let stop = match arg 1 args with Undefined -> len | v -> norm (int_of_float (to_number st v)) in
      if stop <= start then Str "" else Str (String.sub s start (stop - start)));
  define_fn st proto "substring" (fun st this args ->
      let s = receiver st this in
      let len = String.length s in
      let clamp i = max 0 (min len i) in
      let a = clamp (int_arg st 0 args) in
      let b = match arg 1 args with Undefined -> len | v -> clamp (int_of_float (to_number st v)) in
      let lo = min a b and hi = max a b in
      Str (String.sub s lo (hi - lo)));
  define_fn st proto "toUpperCase" (fun st this _ ->
      Str (String.uppercase_ascii (receiver st this)));
  define_fn st proto "toLowerCase" (fun st this _ ->
      Str (String.lowercase_ascii (receiver st this)));
  define_fn st proto "trim" (fun st this _ -> Str (String.trim (receiver st this)));
  define_fn st proto "split" (fun st this args ->
      let s = receiver st this in
      match arg 0 args with
      | Undefined -> Obj (make_array st [| Str s |])
      | sep_v ->
        let sep = to_string st sep_v in
        let parts =
          if sep = "" then List.init (String.length s) (fun i -> String.make 1 s.[i])
          else begin
            let out = ref [] and start = ref 0 in
            let sl = String.length s and nl = String.length sep in
            let i = ref 0 in
            while !i + nl <= sl do
              if String.sub s !i nl = sep then begin
                out := String.sub s !start (!i - !start) :: !out;
                i := !i + nl;
                start := !i
              end
              else incr i
            done;
            out := String.sub s !start (sl - !start) :: !out;
            List.rev !out
          end
        in
        Obj (make_array st (Array.of_list (List.map (fun p -> Str p) parts))));
  define_fn st proto "replace" (fun st this args ->
      (* String-pattern replace (first occurrence), enough for the
         workloads; no regular expressions in MiniJS. *)
      let s = receiver st this in
      let pat = str_arg st 0 args in
      let repl = str_arg st 1 args in
      let sl = String.length s and pl = String.length pat in
      let rec find i =
        if pl = 0 || i + pl > sl then None
        else if String.sub s i pl = pat then Some i
        else find (i + 1)
      in
      (match find 0 with
       | None -> Str s
       | Some i ->
         Str (String.sub s 0 i ^ repl ^ String.sub s (i + pl) (sl - i - pl))));
  define_fn st proto "concat" (fun st this args ->
      let s = receiver st this in
      Str (List.fold_left (fun acc v -> acc ^ to_string st v) s args));
  define_fn st proto "toString" (fun st this _ -> Str (receiver st this));
  let ctor =
    make_host_fn st "String" (fun st _ args ->
        match args with [] -> Str "" | v :: _ -> Str (to_string st v))
  in
  define ctor "prototype" (Obj proto);
  define_fn st ctor "fromCharCode" (fun st _ args ->
      let buf = Buffer.create (List.length args) in
      List.iter
        (fun v -> Buffer.add_char buf (Char.chr (int_of_float (to_number st v) land 255)))
        args;
      Str (Buffer.contents buf));
  define st.global_obj "String" (Obj ctor)

(* ------------------------------------------------------------------ *)

let install_object st =
  let proto = st.object_proto in
  define_fn st proto "toString" (fun st this _ ->
      match this with
      | Obj o -> Str (default_obj_string st o)
      | v -> Str (to_string st v));
  define_fn st proto "hasOwnProperty" (fun st this args ->
      match this with
      | Obj o ->
        let key = str_arg st 0 args in
        (match o.arr, array_index_of_key key with
         | Some a, Some i -> Bool (i < a.len)
         | _ -> Bool (Hashtbl.mem o.props key))
      | _ -> Bool false);
  let ctor =
    make_host_fn st "Object" (fun st _ args ->
        match args with
        | (Obj _ as v) :: _ -> v
        | _ -> Obj (make_obj st))
  in
  define ctor "prototype" (Obj proto);
  define_fn st ctor "keys" (fun st _ args ->
      match arg 0 args with
      | Obj o ->
        let keys = own_keys o in
        Obj (make_array st (Array.of_list (List.map (fun k -> Str k) keys)))
      | _ -> type_error st "Object.keys called on non-object");
  define_fn st ctor "create" (fun st _ args ->
      let proto =
        match arg 0 args with
        | Obj p -> Some p
        | Null -> None
        | _ -> Some st.object_proto
      in
      Obj (make_obj ~proto st));
  define st.global_obj "Object" (Obj ctor);
  (* Function.prototype.call/apply *)
  define_fn st st.function_proto "call" (fun st this args ->
      let target = match args with [] -> Undefined | v :: _ -> v in
      let rest = match args with [] -> [] | _ :: r -> r in
      invoke st this target rest);
  define_fn st st.function_proto "apply" (fun st this args ->
      let target = arg 0 args in
      let rest =
        match arg 1 args with
        | Obj { arr = Some a; _ } -> List.init a.len (fun i -> a.elems.(i))
        | _ -> []
      in
      invoke st this target rest);
  (* Error prototype with a message-bearing toString. *)
  define_fn st st.error_proto "toString" (fun st this _ ->
      match this with
      | Obj o ->
        let name = to_string st (get_prop_obj o "name") in
        let msg = to_string st (get_prop_obj o "message") in
        Str (name ^ ": " ^ msg)
      | _ -> Str "Error");
  let error_ctor =
    make_host_fn st "Error" (fun st this args ->
        let msg = match args with [] -> "" | v :: _ -> to_string st v in
        match this with
        | Obj o ->
          raw_set_prop o "name" (Str "Error");
          raw_set_prop o "message" (Str msg);
          Undefined
        | _ ->
          let o = make_obj ~proto:(Some st.error_proto) st in
          raw_set_prop o "name" (Str "Error");
          raw_set_prop o "message" (Str msg);
          Obj o)
  in
  define error_ctor "prototype" (Obj st.error_proto);
  define st.global_obj "Error" (Obj error_ctor)

(* ------------------------------------------------------------------ *)

let install_console st =
  let console = make_obj st in
  let log_fn level =
    fun st _ args ->
      let line =
        String.concat " " (List.map (fun v -> to_string st v) args)
      in
      let line = if level = "" then line else level ^ ": " ^ line in
      st.console <- line :: st.console;
      if st.echo_console then print_endline line;
      Undefined
  in
  define_fn st console "log" (log_fn "");
  define_fn st console "warn" (log_fn "warn");
  define_fn st console "error" (log_fn "error");
  define st.global_obj "console" (Obj console)

let install_timers st =
  let schedule st callback delay_ms =
    let due =
      Int64.add
        (Ceres_util.Vclock.now st.clock)
        (Ceres_util.Vclock.ms_to_ticks st.clock delay_ms)
    in
    let seq = st.next_event_seq in
    st.next_event_seq <- seq + 1;
    st.events <- { due; seq; callback; args = [] } :: st.events;
    seq
  in
  define_fn st st.global_obj "setTimeout" (fun st _ args ->
      let callback = arg 0 args in
      let delay = match arg 1 args with Undefined -> 0. | v -> to_number st v in
      Num (float_of_int (schedule st callback delay)));
  define_fn st st.global_obj "requestAnimationFrame" (fun st _ args ->
      let callback = arg 0 args in
      (* 60 fps frame cadence *)
      Num (float_of_int (schedule st callback (1000. /. 60.))));
  define_fn st st.global_obj "clearTimeout" (fun st _ args ->
      let id = int_arg st 0 args in
      st.events <- List.filter (fun ev -> ev.seq <> id) st.events;
      Undefined);
  (* Timers the paper's tool uses: Date.now (ms) and the W3C
     high-resolution timer performance.now (fractional ms). *)
  let date = make_obj st in
  define_fn st date "now" (fun st _ _ ->
      st.host_time_reads <- st.host_time_reads + 1;
      Num (Ceres_util.Vclock.to_ms st.clock (Ceres_util.Vclock.now st.clock)));
  define st.global_obj "Date" (Obj date);
  let perf = make_obj st in
  define_fn st perf "now" (fun st _ _ ->
      st.host_time_reads <- st.host_time_reads + 1;
      Num (Ceres_util.Vclock.to_ms st.clock (Ceres_util.Vclock.now st.clock)));
  define st.global_obj "performance" (Obj perf)

let install_globals st =
  define_fn st st.global_obj "parseInt" (fun st _ args ->
      let s = String.trim (str_arg st 0 args) in
      let radix = match arg 1 args with Undefined -> 10 | v -> int_of_float (to_number st v) in
      let s, sign =
        if String.length s > 0 && s.[0] = '-' then
          String.sub s 1 (String.length s - 1), -1.
        else if String.length s > 0 && s.[0] = '+' then
          String.sub s 1 (String.length s - 1), 1.
        else s, 1.
      in
      let digit c =
        if c >= '0' && c <= '9' then Some (Char.code c - Char.code '0')
        else if c >= 'a' && c <= 'z' then Some (Char.code c - Char.code 'a' + 10)
        else if c >= 'A' && c <= 'Z' then Some (Char.code c - Char.code 'A' + 10)
        else None
      in
      let acc = ref 0. and any = ref false and stop = ref false in
      String.iter
        (fun c ->
           if not !stop then
             match digit c with
             | Some d when d < radix ->
               acc := (!acc *. float_of_int radix) +. float_of_int d;
               any := true
             | _ -> stop := true)
        s;
      if !any then Num (sign *. !acc) else Num Float.nan);
  define_fn st st.global_obj "parseFloat" (fun st _ args ->
      Num (number_of_string (str_arg st 0 args)));
  define_fn st st.global_obj "isNaN" (fun st _ args ->
      Bool (Float.is_nan (num_arg st 0 args)));
  define_fn st st.global_obj "isFinite" (fun st _ args ->
      let f = num_arg st 0 args in
      Bool (not (Float.is_nan f) && Float.abs f <> Float.infinity));
  define st.global_obj "NaN" (Num Float.nan);
  define st.global_obj "Infinity" (Num Float.infinity);
  define_fn st st.number_proto "toFixed" (fun st this args ->
      let f = to_number st this in
      let digits = int_arg st 0 args in
      Str (Printf.sprintf "%.*f" digits f));
  define_fn st st.number_proto "toString" (fun st this args ->
      let f = to_number st this in
      match arg 0 args with
      | Undefined -> Str (Jsir.Printer.number_to_string f)
      | radix_v ->
        let radix = int_of_float (to_number st radix_v) in
        if radix < 2 || radix > 36 then
          throw_error st "RangeError" "toString() radix must be 2..36"
        else if radix = 10 then Str (Jsir.Printer.number_to_string f)
        else begin
          (* integral part only, as the workloads need (hex ids etc.) *)
          let n = int_of_float (Float.trunc (Float.abs f)) in
          let digit d =
            if d < 10 then Char.chr (Char.code '0' + d)
            else Char.chr (Char.code 'a' + d - 10)
          in
          let rec go acc n =
            if n = 0 then acc else go (String.make 1 (digit (n mod radix)) ^ acc) (n / radix)
          in
          let text = if n = 0 then "0" else go "" n in
          Str (if f < 0. then "-" ^ text else text)
        end)

let install st =
  install_object st;
  Json.install st;
  install_math st;
  install_array st;
  install_string st;
  install_console st;
  install_timers st;
  install_globals st
