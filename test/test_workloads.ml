(* Integration tests over the 12 case-study workloads: every app must
   run cleanly under every instrumentation mode, and the measured
   quantities must satisfy the invariants the paper's tables rely on. *)

let all = Workloads.Registry.all

let test_registry_complete () =
  Alcotest.(check int) "12 workloads" 12 (List.length all);
  (* exactly the paper's Table 1 names *)
  let expected =
    [ "HAAR.js"; "Tear-able Cloth"; "CamanJS"; "fluidSim"; "Harmony"; "Ace";
      "MyScript"; "Raytracing"; "Normal Mapping"; "sigma.js";
      "processing.js"; "D3.js" ]
  in
  Alcotest.(check (list string)) "names" expected Workloads.Registry.names;
  Alcotest.(check bool) "lookup is case-insensitive" true
    (Workloads.Registry.find "camanjs" <> None)

let test_sources_parse_and_roundtrip () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
       let p = Jsir.Parser.parse_program w.source in
       Alcotest.(check bool) (w.name ^ " has loops") true (p.loop_count > 0);
       let printed = Jsir.Printer.program_to_string p in
       let p2 = Jsir.Parser.parse_program printed in
       Alcotest.(check bool)
         (w.name ^ " round-trips")
         true
         (Jsir.Equal.program p p2))
    all

let test_all_run_plain () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
       let ctx = Workloads.Harness.run_plain w in
       let busy = Ceres_util.Vclock.busy ctx.st.Interp.Value.clock in
       Alcotest.(check bool) (w.name ^ " did work") true
         (Int64.compare busy 0L > 0))
    all

let test_table2_invariants () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
       let t = Workloads.Harness.run_lightweight w in
       Alcotest.(check bool)
         (w.name ^ ": loops <= busy")
         true
         (t.in_loops_ms <= t.busy_ms +. 1e-6);
       Alcotest.(check bool)
         (w.name ^ ": busy <= total")
         true
         (t.busy_ms <= t.total_ms +. 1e-6);
       Alcotest.(check bool)
         (w.name ^ ": session at least as long as scripted")
         true
         (t.total_ms >= w.session_ms -. 1e-6))
    all

let test_expected_console_output () =
  let expect =
    [ ("HAAR.js", "haar: candidates");
      ("Tear-able Cloth", "cloth: frames");
      ("CamanJS", "caman: render");
      ("fluidSim", "fluid: frames");
      ("Harmony", "harmony: points");
      ("Ace", "ace: passes");
      ("MyScript", "myscript: stroke");
      ("Raytracing", "raytracer: frames");
      ("Normal Mapping", "normalmap: frames");
      ("sigma.js", "sigma: frames");
      ("processing.js", "processing: frames");
      ("D3.js", "d3: projections") ]
  in
  List.iter
    (fun (w : Workloads.Workload.t) ->
       let ctx = Workloads.Harness.run_plain w in
       let console = List.rev ctx.st.Interp.Value.console in
       let marker = List.assoc w.name expect in
       Alcotest.(check bool)
         (w.name ^ " printed " ^ marker)
         true
         (List.exists (Helpers.contains ~sub:marker) console))
    all

let test_dom_using_apps_touch_dom () =
  let expect_dom =
    [ "Harmony"; "Ace"; "MyScript"; "sigma.js"; "D3.js" ]
  in
  List.iter
    (fun name ->
       let w = Option.get (Workloads.Registry.find name) in
       let t = Workloads.Harness.run_lightweight w in
       Alcotest.(check bool) (name ^ " touches DOM/canvas") true
         (t.dom_accesses + t.canvas_accesses > 0))
    expect_dom

let test_inspection_row_counts () =
  (* the paper's Table 3 has 22 rows across the 12 applications *)
  let total =
    List.fold_left
      (fun acc (w : Workloads.Workload.t) ->
         acc + List.length (Workloads.Harness.inspect w))
      0 all
  in
  Alcotest.(check int) "22 inspected nests" 22 total

let test_inspection_determinism () =
  let w = Option.get (Workloads.Registry.find "Raytracing") in
  let a = Workloads.Harness.inspect w in
  let b = Workloads.Harness.inspect w in
  Alcotest.(check bool) "inspection is deterministic" true
    (List.for_all2
       (fun (x : Workloads.Harness.nest_row) (y : Workloads.Harness.nest_row) ->
          x.root = y.root && x.instances = y.instances
          && x.trips_mean = y.trips_mean
          && x.divergence = y.divergence
          && x.dep_difficulty = y.dep_difficulty
          && x.par_difficulty = y.par_difficulty)
       a b)

let test_key_table3_shape () =
  (* spot-check the rows the paper's conclusions hang on *)
  let inspect name = Workloads.Harness.inspect (Option.get (Workloads.Registry.find name)) in
  (match inspect "Raytracing" with
   | (r : Workloads.Harness.nest_row) :: _ ->
     Alcotest.(check bool) "raytracer deps trivial" true
       (r.dep_difficulty = Ceres.Classify.Very_easy
        || r.dep_difficulty = Ceres.Classify.Easy);
     Alcotest.(check bool) "raytracer has no DOM in the nest" false
       r.dom_access
   | [] -> Alcotest.fail "raytracing rows");
  (match inspect "Harmony" with
   | (r : Workloads.Harness.nest_row) :: _ ->
     Alcotest.(check bool) "harmony nests hit the DOM" true r.dom_access;
     Alcotest.(check bool) "harmony parallelization very hard" true
       (r.par_difficulty = Ceres.Classify.Very_hard)
   | [] -> Alcotest.fail "harmony rows");
  (match inspect "Ace" with
   | (r : Workloads.Harness.nest_row) :: _ ->
     Alcotest.(check bool) "ace ~1 trip" true (r.trips_mean < 2.5);
     Alcotest.(check bool) "ace divergence yes" true
       (r.divergence = Ceres.Classify.Yes)
   | [] -> Alcotest.fail "ace rows")

let test_amdahl_five_over_three () =
  (* the headline claim: >3x upper bound for 5 of the 12 apps *)
  let over_3 =
    List.fold_left
      (fun acc (w : Workloads.Workload.t) ->
         let t = Workloads.Harness.run_lightweight w in
         let rows = Workloads.Harness.inspect ~max_nests:16 w in
         let easy_pct =
           List.fold_left
             (fun acc (r : Workloads.Harness.nest_row) ->
                match r.par_difficulty with
                | Ceres.Classify.Very_easy | Ceres.Classify.Easy
                | Ceres.Classify.Medium ->
                  acc +. r.pct_loop_time
                | _ -> acc)
             0. rows
         in
         let p =
           if t.busy_ms <= 0. then 0.
           else t.in_loops_ms *. (easy_pct /. 100.) /. t.busy_ms
         in
         if Js_parallel.Amdahl.asymptote ~parallel_fraction:p > 3. then
           acc + 1
         else acc)
      0 all
  in
  Alcotest.(check int) "5 of 12 above 3x (paper Sec 4.2)"
    Workloads.Paper_data.amdahl_easy_apps over_3

let test_table3_agreement_regression () =
  (* Pin the paper-agreement level of the ordinal Table 3 columns so
     classifier changes cannot silently drift away from the paper. *)
  let difficulty_rank = function
    | "very easy" -> 0 | "easy" -> 1 | "medium" -> 2 | "hard" -> 3
    | "very hard" -> 4 | _ -> -10
  in
  let cells = ref 0 and exact = ref 0 and near = ref 0 in
  List.iter
    (fun (w : Workloads.Workload.t) ->
       let rows = Workloads.Harness.inspect w in
       let paper_rows =
         List.filter
           (fun (r : Workloads.Paper_data.t3_row) -> r.app = w.name)
           Workloads.Paper_data.table3
       in
       List.iteri
         (fun i (r : Workloads.Harness.nest_row) ->
            match List.nth_opt paper_rows i with
            | None -> ()
            | Some p ->
              let check mine theirs =
                incr cells;
                let dm = difficulty_rank mine
                and dt = difficulty_rank theirs in
                if dm = dt then incr exact;
                if abs (dm - dt) <= 1 then incr near
              in
              check
                (Ceres.Classify.difficulty_to_string r.dep_difficulty)
                p.deps;
              check
                (Ceres.Classify.difficulty_to_string r.par_difficulty)
                p.par)
         rows)
    all;
  Alcotest.(check int) "44 ordinal difficulty cells" 44 !cells;
  Alcotest.(check bool)
    (Printf.sprintf "at least 17 exact matches (got %d)" !exact)
    true (!exact >= 17);
  Alcotest.(check bool)
    (Printf.sprintf "at least 33 within one level (got %d)" !near)
    true (!near >= 33)

let suite =
  [ ("registry complete", `Quick, test_registry_complete);
    ("sources parse and round-trip", `Quick, test_sources_parse_and_roundtrip);
    ("all run plain", `Slow, test_all_run_plain);
    ("table 2 invariants", `Slow, test_table2_invariants);
    ("expected console output", `Slow, test_expected_console_output);
    ("dom apps touch dom", `Slow, test_dom_using_apps_touch_dom);
    ("22 inspected nests", `Slow, test_inspection_row_counts);
    ("inspection determinism", `Slow, test_inspection_determinism);
    ("key table 3 shapes", `Slow, test_key_table3_shape);
    ("amdahl 5 of 12", `Slow, test_amdahl_five_over_three);
    ("table 3 agreement regression", `Slow, test_table3_agreement_regression) ]
