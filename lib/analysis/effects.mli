(** Effect summaries (stage 2 of the static analyzer).

    A bottom-up may-effect summary per function, closed under a
    fixpoint over the name-resolved call graph. Intrinsics and the
    DOM/canvas/console/timer builtins carry hand-written summaries;
    heap effects are attributed to memory roots where resolvable and
    to parameter positions otherwise, translated at each call site
    through the argument regions. *)

open Jsir
module IS : Set.S with type elt = int

(** Which allocation an object reference may point into. *)
type region =
  | Fresh  (** allocated within the current activation *)
  | Root of Scope.root
  | Param of int
  | RThis
  | RUnknown

val region_join : region -> region -> region

type summary = {
  greads : Scope.RS.t;  (** scalar global/captured roots read *)
  gwrites : Scope.RS.t;
  hread_roots : Scope.RS.t;
  hread_params : IS.t;
  hread_unknown : bool;
  hwrite_roots : Scope.RS.t;
  hwrite_params : IS.t;
  hwrite_unknown : bool;
  this_reads : bool;
  this_writes : bool;
  io : bool;
  calls_unknown : bool;
  returns_shared : bool;
      (** may return a non-fresh, non-param, non-scalar value *)
  returns_params : IS.t;  (** parameter positions possibly returned *)
}

val bottom : summary
val join : summary -> summary -> summary
val is_pure : summary -> bool

type t

val infer : Scope.t -> t
(** Run the summary fixpoint over every function of the program. *)

val summary : t -> Scope.fid -> summary
val scope : t -> Scope.t

val region_of :
  t ->
  ?param_as_root:bool ->
  ?local_env:(string -> region option) ->
  Scope.fid ->
  Ast.expr ->
  region
(** Region of an expression evaluated inside function [fid].
    [param_as_root] treats the function's own parameters as roots
    (loop-level view) instead of [Param] positions (call-boundary
    view); [local_env] overlays per-iteration knowledge. *)

val scalar_shaped : Ast.expr -> bool
(** Syntactically cannot carry an object reference. *)

(** How a call site behaves; shared with the loop-dependence walk. *)
type call_kind =
  | Cpure
  | Cio
  | Cmutate_receiver of string * Ast.expr
  | Cread_receiver of Ast.expr
  | Citerate of Ast.expr
  | Cuser of Scope.fid list
  | Cunknown

val classify_call : t -> Scope.fid -> Ast.expr -> call_kind

val callback_fids : t -> Scope.fid -> Ast.expr list -> Scope.fid list option
(** Resolve callback arguments of an iterating builtin; [None] when
    an argument may be an unresolvable function. *)

val apply :
  t ->
  callees:Scope.fid list ->
  arg_region:(int -> region) ->
  receiver:region option ->
  is_new:bool ->
  summary
(** The joined summaries of [callees] translated into the caller's
    frame: parameter-indexed heap effects land on the argument
    regions, [this] effects on the receiver ([new] receivers are
    fresh, so their [this] writes vanish). *)

val describe : summary -> string
