(* Speculative parallelization with abort reporting (paper Sec. 5.3:
   speculation "not only need[s] to abort ... but also have ways to
   report to the developer the reason for aborting").

   Two candidate loops from a cloth simulation:
   - the Verlet integration over points is independent per point: the
     speculation commits and the iterations replay in parallel;
   - the constraint relaxation writes both endpoints of each spring, so
     neighbouring iterations conflict: the speculation aborts and the
     JS-CERES warnings are printed as the reason.

   Run with: dune exec examples/speculative_cloth.exe *)

let setup = {|
var N = 64;
var px = []; var py = [];   // positions
var ox = []; var oy = [];   // previous positions
(function() {
  var i;
  for (i = 0; i < N; i++) {
    px.push(i * 3); py.push((i % 7) * 2);
    ox.push(i * 3 - 0.5); oy.push((i % 7) * 2 - 0.2);
  }
})();
|}

(* Candidate 1: Verlet integration, one point per iteration. *)
let integrate = {|function(i) {
  var vx = (px[i] - ox[i]) * 0.99;
  var vy = (py[i] - oy[i]) * 0.99 + 0.24;
  ox[i] = px[i];
  oy[i] = py[i];
  px[i] = px[i] + vx;
  py[i] = py[i] + vy;
  return px[i] + py[i];
}|}

(* Candidate 2: constraint relaxation between neighbours i and i+1 —
   iteration i writes point i+1, iteration i+1 reads it back. *)
let relax = {|function(i) {
  var rest = 3;
  var dx = px[i + 1] - px[i];
  var d = dx < 0 ? -dx : dx;
  var diff = d > 0.0001 ? (rest - d) / d * 0.5 : 0;
  px[i] = px[i] - dx * diff;
  px[i + 1] = px[i + 1] + dx * diff;
  return px[i];
}|}

let attempt name iter_src ~hi =
  Printf.printf "--- speculating on %s ---\n" name;
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:setup ~iter_src ~lo:0
      ~hi ()
  with
  | Committed { result; domains } ->
    Printf.printf "committed on %d domains, checksum %.3f\n" domains result;
    let seq =
      Js_parallel.Speculative.run_sequential ~setup_src:setup ~iter_src ~lo:0
        ~hi ()
    in
    Printf.printf "sequential oracle %.3f -> %s\n\n" seq
      (if Float.abs (seq -. result) < 1e-6 then "equal" else "MISMATCH")
  | Aborted reason ->
    Printf.printf "aborted:\n%s\n\n"
      (Js_parallel.Speculative.abort_reason_to_string reason)

let () =
  attempt "Verlet integration (independent points)" integrate ~hi:64;
  attempt "constraint relaxation (neighbour conflicts)" relax ~hi:63
