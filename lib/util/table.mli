(** Plain-text table rendering for the paper's tables and figures.

    The bench harness prints every reproduced artefact as an aligned
    ASCII table, in the same row/column layout the paper uses, so the
    output can be compared side by side with the PDF. *)

type align = Left | Right | Center

type t

val create : ?title:string -> string list -> t
(** [create ~title headers] starts a table with the given column
    headers. Column count is fixed by the header list. *)

val set_align : t -> align list -> unit
(** Per-column alignment; defaults to [Left] everywhere. The list must
    have one entry per column. *)

val add_row : t -> string list -> unit
(** Append a row; must match the column count. *)

val add_separator : t -> unit
(** Append a horizontal rule (used between groups of rows, e.g. the
    per-application groups of Table 3). *)

val render : t -> string
(** The finished table, newline-terminated. *)

val print : t -> unit
(** [render] to stdout. *)

val bar_chart : ?width:int -> (string * float) list -> string
(** Horizontal ASCII bar chart used for the survey figures; values are
    fractions in [0,1] rendered as percentages. *)
