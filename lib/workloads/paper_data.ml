(* The paper's published measurements, used by the bench harness and
   EXPERIMENTS.md to print paper-vs-measured comparisons. Values are
   transcribed from the PPoPP'15 paper (Tables 2 and 3). *)

(* Table 2: name, total s, active s, in-loops s. *)
let table2 =
  [ ("HAAR.js", 8., 2., 0.44);
    ("Tear-able Cloth", 14., 7., 9.);
    ("CamanJS", 40., 23., 17.);
    ("fluidSim", 22., 17., 12.);
    ("Harmony", 41., 0.36, 0.28);
    ("Ace", 30., 0.4, 0.4);
    ("MyScript", 12., 0.33, 0.15);
    ("Raytracing", 62., 19., 26.);
    ("Normal Mapping", 25., 6., 4.);
    ("sigma.js", 32., 9., 8.);
    ("processing.js", 21., 12., 2.);
    ("D3.js", 18., 5., 4.) ]

type t3_row = {
  app : string;
  pct : float; (* % of loop time *)
  instances : float; (* the paper's "instructions" column *)
  trips : float;
  trips_sd : float option;
  divergence : string; (* none / little / yes / no *)
  dom : bool;
  deps : string; (* very easy .. very hard *)
  par : string;
}

let row app pct instances trips trips_sd divergence dom deps par =
  { app; pct; instances; trips; trips_sd; divergence; dom; deps; par }

(* Table 3: the 22 inspected loop nests. *)
let table3 =
  [ row "HAAR.js" 38. 10. 31. (Some 23.) "little" false "easy" "easy";
    row "HAAR.js" 36. 50_000. 15. (Some 15.) "yes" false "easy" "medium";
    row "Tear-able Cloth" 80. 1077. 1581. None "little" false "medium" "medium";
    row "CamanJS" 72. 536. 90_000. None "little" false "easy" "easy";
    row "CamanJS" 15. 16. 90_000. (Some 300.) "little" false "easy" "easy";
    row "CamanJS" 7. 12. 360_000. None "little" false "easy" "easy";
    row "fluidSim" 90. 40_000. 168. (Some 147.) "none" false "easy" "easy";
    row "Harmony" 33. 207. 50. None "none" true "easy" "very hard";
    row "Harmony" 32. 498. 50. None "none" true "easy" "very hard";
    row "Harmony" 15. 123. 5. (Some 3.) "none" true "easy" "very hard";
    row "Ace" 42. 125. 1. (Some 0.1) "yes" true "very hard" "very hard";
    row "Ace" 22. 123. 1. (Some 0.2) "yes" true "very hard" "very hard";
    row "MyScript" 70. 511. 4. (Some 2.) "yes" true "very hard" "very hard";
    row "Raytracing" 98. 772. 120. None "yes" false "very easy" "easy";
    row "Normal Mapping" 99. 64. 65_000. None "little" false "very easy" "easy";
    row "sigma.js" 68. 2070. 191. (Some 27.) "little" true "very hard" "very hard";
    row "sigma.js" 22. 638. 196. (Some 21.) "yes" true "very hard" "very hard";
    row "processing.js" 25. 54_600. 4. (Some 37.) "no" false "easy" "medium";
    row "processing.js" 22. 54_600. 4. (Some 37.) "no" false "easy" "medium";
    row "processing.js" 16. 54_500. 2. None "yes" true "medium" "very hard";
    row "processing.js" 13. 54_600. 4. (Some 37.) "no" false "easy" "medium";
    row "D3.js" 99. 51. 156. (Some 57.) "yes" true "hard" "hard" ]

(* Sec. 4.2: Amdahl observations. *)
let amdahl_claim = "speedup upper bound > 3x for 5 of the 12 applications"
let amdahl_easy_apps = 5
let amdahl_hard_apps = 5 (* "hard or very hard to obtain any speedup" *)
