type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  title : string option;
  headers : string list;
  columns : int;
  mutable aligns : align array;
  mutable rows : row list; (* reversed *)
}

let create ?title headers =
  let columns = List.length headers in
  if columns = 0 then invalid_arg "Table.create: no columns";
  { title; headers; columns; aligns = Array.make columns Left; rows = [] }

let set_align t aligns =
  if List.length aligns <> t.columns then
    invalid_arg "Table.set_align: wrong arity";
  t.aligns <- Array.of_list aligns

let add_row t cells =
  if List.length cells <> t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else
    let gap = width - len in
    match align with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
    | Center ->
      let left = gap / 2 in
      String.make left ' ' ^ s ^ String.make (gap - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let measure = function
    | Separator -> ()
    | Cells cells ->
      List.iteri
        (fun i c -> if String.length c > widths.(i) then
            widths.(i) <- String.length c)
        cells
  in
  List.iter measure rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Array.iter
      (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "+\n"
  in
  let emit_cells aligns cells =
    List.iteri
      (fun i c ->
         Buffer.add_string buf "| ";
         Buffer.add_string buf (pad aligns.(i) widths.(i) c);
         Buffer.add_char buf ' ')
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
   | None -> ()
   | Some title ->
     Buffer.add_string buf title;
     Buffer.add_char buf '\n');
  rule ();
  emit_cells (Array.make t.columns Center) t.headers;
  rule ();
  List.iter
    (function
      | Separator -> rule ()
      | Cells cells -> emit_cells t.aligns cells)
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t)

let bar_chart ?(width = 40) entries =
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, fraction) ->
       let fraction = Float.max 0. (Float.min 1. fraction) in
       let bars = int_of_float (Float.round (fraction *. float_of_int width)) in
       Buffer.add_string buf (pad Left label_width label);
       Buffer.add_string buf " |";
       Buffer.add_string buf (String.make bars '#');
       Buffer.add_string buf (String.make (width - bars) ' ');
       Buffer.add_string buf
         (Printf.sprintf "| %4.1f%%\n" (fraction *. 100.)))
    entries;
  Buffer.contents buf
