(* Source-level instrumentation (paper Sec. 3, Fig. 5 step 2).

   The paper's proxy rewrites JavaScript on its way to the browser; we
   rewrite the AST before interpretation — same staging, same
   observation points. Three modes of increasing cost:

   - [Lightweight]: open-loop counter increments/decrements around
     every syntactic loop (Sec. 3.1);
   - [Loop_profile]: per-loop enter/iteration/exit events feeding
     instance, trip-count and timing statistics (Sec. 3.2);
   - [Dependence]: everything above plus creation-site wrapping, scope
     stamping, and interception of every property read/write and
     variable write (Sec. 3.3).

   Loops are wrapped in [try]/[finally] so exit events fire on [break],
   [return] and exceptions; iteration events are prepended to the body
   so they fire once per trip. All inserted calls are
   {!Jsir.Ast.Intrinsic} nodes — the interpreter dispatches them to the
   handlers {!Install} registers, and they cannot collide with user
   identifiers. *)

open Jsir.Ast

type mode = Lightweight | Loop_profile | Dependence

let num_of_int i = number (float_of_int i)
let line_arg (at : span) = num_of_int at.left.line

let call0 name = expr_stmt (intrinsic name [])
let call1 name arg = expr_stmt (intrinsic name [ arg ])

(* Wrap a transformed loop statement with enter/exit notifications.
   [finally] guarantees the exit fires however the loop terminates. *)
let wrap_loop ~enter ~exit_ (loop_stmt : stmt) : stmt =
  mk_stmt
    (Block [ enter; mk_stmt (Try ([ loop_stmt ], None, Some [ exit_ ])) ])

let prepend_to_body extra (body : stmt) : stmt =
  match body.s with
  | Block stmts -> { body with s = Block (extra :: stmts) }
  | _ -> mk_stmt (Block [ extra; body ])

let rec tx_stmt mode (s : stmt) : stmt =
  match s.s with
  | Empty | Break _ | Continue _ -> s
  | Labeled (name, body) ->
    (match body.s with
     | While _ | Do_while _ | For _ | For_in _ ->
       (* the loop now sits inside the enter/try-finally wrapper (and,
          in dependence mode, possibly an extra declarations block);
          re-attach the label to the loop itself so [continue label]
          still targets it *)
       relabel_loop name (tx_stmt mode body)
     | _ -> { s with s = Labeled (name, tx_stmt mode body) })
  | Expr_stmt e -> { s with s = Expr_stmt (tx_expr mode e) }
  | Var_decl decls when mode = Dependence
                     && List.exists (fun (_, i) -> i <> None) decls ->
    (* [var p = e] initialisations are writes to the (function-scoped)
       binding p; rewrite them into recorded writes so the analysis
       sees them — this is the paper's "write to variable p" case. *)
    let decl_stmt =
      mk_stmt ~at:s.sat (Var_decl (List.map (fun (n, _) -> (n, None)) decls))
    in
    let writes =
      List.filter_map
        (fun (name, init) ->
           match init with
           | None -> None
           | Some e ->
             Some
               (expr_stmt
                  (intrinsic "__ceres_var_write"
                     [ ident name; line_arg e.at; string_lit "=";
                       tx_expr mode e ])))
        decls
    in
    mk_stmt ~at:s.sat (Block (decl_stmt :: writes))
  | Var_decl decls ->
    { s with
      s =
        Var_decl
          (List.map
             (fun (name, init) -> (name, Option.map (tx_expr mode) init))
             decls) }
  | Return e -> { s with s = Return (Option.map (tx_expr mode) e) }
  | Throw e -> { s with s = Throw (tx_expr mode e) }
  | If (cond, then_s, else_s) ->
    { s with
      s =
        If
          ( tx_expr mode cond,
            tx_stmt mode then_s,
            Option.map (tx_stmt mode) else_s ) }
  | Block body -> { s with s = Block (List.map (tx_stmt mode) body) }
  | Try (body, catch, finally) ->
    { s with
      s =
        Try
          ( List.map (tx_stmt mode) body,
            Option.map (fun (n, cb) -> (n, List.map (tx_stmt mode) cb)) catch,
            Option.map (List.map (tx_stmt mode)) finally ) }
  | Switch (scrutinee, cases) ->
    { s with
      s =
        Switch
          ( tx_expr mode scrutinee,
            List.map
              (fun (guard, body) ->
                 (Option.map (tx_expr mode) guard, List.map (tx_stmt mode) body))
              cases ) }
  | Func_decl f -> { s with s = Func_decl (tx_func mode f) }
  | While (id, cond, body) ->
    let body = iter_body mode id (tx_stmt mode body) in
    let loop = { s with s = While (id, tx_expr mode cond, body) } in
    instrument_loop mode id loop
  | Do_while (id, body, cond) ->
    let body = iter_body mode id (tx_stmt mode body) in
    let loop = { s with s = Do_while (id, body, tx_expr mode cond) } in
    instrument_loop mode id loop
  | For (id, init, cond, update, body) when mode = Dependence ->
    (* For-head writes drive the induction variable; they are recorded
       under a dedicated kind that the difficulty classifier ignores
       (privatizing the induction variable is the trivial first step of
       any loop parallelization). Declarations move out of the head so
       their initialising writes can be expressed as intrinsics. *)
    let pre, init =
      match init with
      | None -> ([], None)
      | Some (Init_expr e) -> ([], Some (Init_expr (tx_induction e)))
      | Some (Init_var decls) ->
        let decl_stmt =
          mk_stmt ~at:s.sat
            (Var_decl (List.map (fun (n, _) -> (n, None)) decls))
        in
        let writes =
          List.filter_map
            (fun (name, ie) ->
               match ie with
               | None -> None
               | Some e ->
                 Some
                   (intrinsic "__ceres_induction_write"
                      [ ident name; line_arg e.at; string_lit "=";
                        tx_expr mode e ]))
            decls
        in
        let init_expr =
          match writes with
          | [] -> None
          | first :: rest ->
            Some
              (Init_expr
                 (List.fold_left (fun acc w -> mk (Seq (acc, w))) first rest))
        in
        ([ decl_stmt ], init_expr)
    in
    let body = iter_body mode id (tx_stmt mode body) in
    let loop =
      { s with
        s =
          For
            ( id,
              init,
              Option.map (tx_expr mode) cond,
              Option.map tx_induction update,
              body ) }
    in
    let wrapped = instrument_loop mode id loop in
    (match pre with
     | [] -> wrapped
     | pre -> mk_stmt ~at:s.sat (Block (pre @ [ wrapped ])))
  | For (id, init, cond, update, body) ->
    let init =
      Option.map
        (function
          | Init_expr e -> Init_expr (tx_expr mode e)
          | Init_var decls ->
            Init_var
              (List.map
                 (fun (n, ie) -> (n, Option.map (tx_expr mode) ie))
                 decls))
        init
    in
    let body = iter_body mode id (tx_stmt mode body) in
    let loop =
      { s with
        s =
          For
            ( id,
              init,
              Option.map (tx_expr mode) cond,
              Option.map (tx_expr mode) update,
              body ) }
    in
    instrument_loop mode id loop
  | For_in (id, binder, obj, body) ->
    let body = iter_body mode id (tx_stmt mode body) in
    let loop = { s with s = For_in (id, binder, tx_expr mode obj, body) } in
    instrument_loop mode id loop

(* Attach [name] to the first loop statement found inside the
   instrumentation wrappers (blocks and try bodies only). *)
and relabel_loop name (s : stmt) : stmt =
  match s.s with
  | While _ | Do_while _ | For _ | For_in _ ->
    mk_stmt ~at:s.sat (Labeled (name, s))
  | Block stmts ->
    let done_ = ref false in
    let stmts =
      List.map
        (fun st ->
           if !done_ then st
           else begin
             let st' = relabel_loop name st in
             if st' != st then done_ := true;
             st'
           end)
        stmts
    in
    { s with s = Block stmts }
  | Try (body, c, f) ->
    let done_ = ref false in
    let body =
      List.map
        (fun st ->
           if !done_ then st
           else begin
             let st' = relabel_loop name st in
             if st' != st then done_ := true;
             st'
           end)
        body
    in
    { s with s = Try (body, c, f) }
  | _ -> s

and instrument_loop mode id loop =
  match mode with
  | Lightweight ->
    wrap_loop ~enter:(call0 "__ceres_light_enter")
      ~exit_:(call0 "__ceres_light_exit") loop
  | Loop_profile | Dependence ->
    wrap_loop
      ~enter:(call1 "__ceres_loop_enter" (num_of_int id))
      ~exit_:(call1 "__ceres_loop_exit" (num_of_int id))
      loop

and iter_body mode id body =
  match mode with
  | Lightweight -> body
  | Loop_profile | Dependence ->
    prepend_to_body (call1 "__ceres_loop_iter" (num_of_int id)) body

and tx_func mode (f : func) : func =
  let body = List.map (tx_stmt mode) f.body in
  let body =
    match mode with
    | Dependence -> call0 "__ceres_fn_scope" :: body
    | Lightweight | Loop_profile -> body
  in
  (* the rewritten body invalidates any slot layout computed for the
     original function *)
  { f with body; layout = None }

and tx_expr mode (e : expr) : expr =
  match mode with
  | Lightweight | Loop_profile -> tx_expr_shallow mode e
  | Dependence -> tx_expr_dep e

(* Light modes only recurse to reach nested functions and loops hidden
   in function expressions. *)
and tx_expr_shallow mode (e : expr) : expr =
  let tx = tx_expr_shallow mode in
  match e.e with
  | Number _ | String _ | Bool _ | Null | Undefined | Ident _ | This -> e
  | Array_lit elems -> { e with e = Array_lit (List.map tx elems) }
  | Object_lit props ->
    { e with e = Object_lit (List.map (fun (k, v) -> (k, tx v)) props) }
  | Function_expr f -> { e with e = Function_expr (tx_func mode f) }
  | Member (o, f) -> { e with e = Member (tx o, f) }
  | Index (o, i) -> { e with e = Index (tx o, tx i) }
  | Call (callee, args) ->
    { e with e = Call (tx callee, List.map tx args) }
  | New (callee, args) -> { e with e = New (tx callee, List.map tx args) }
  | Unop (op, operand) -> { e with e = Unop (op, tx operand) }
  | Binop (op, l, r) -> { e with e = Binop (op, tx l, tx r) }
  | Logical (op, l, r) -> { e with e = Logical (op, tx l, tx r) }
  | Cond (c, t, f) -> { e with e = Cond (tx c, tx t, tx f) }
  | Assign (tgt, op, rhs) ->
    { e with e = Assign (tx_target_shallow mode tgt, op, tx rhs) }
  | Update (kind, prefix, tgt) ->
    { e with e = Update (kind, prefix, tx_target_shallow mode tgt) }
  | Seq (l, r) -> { e with e = Seq (tx l, tx r) }
  | Intrinsic (name, args) -> { e with e = Intrinsic (name, List.map tx args) }

and tx_target_shallow mode = function
  | Tgt_ident x -> Tgt_ident x
  | Tgt_member (o, f) -> Tgt_member (tx_expr_shallow mode o, f)
  | Tgt_index (o, i) ->
    Tgt_index (tx_expr_shallow mode o, tx_expr_shallow mode i)

(* Dependence mode: full access interception. *)
and tx_expr_dep (e : expr) : expr =
  let tx = tx_expr_dep in
  let line = line_arg e.at in
  match e.e with
  | Number _ | String _ | Bool _ | Null | Undefined | Ident _ | This -> e
  | Array_lit elems ->
    intrinsic "__ceres_created"
      [ { e with e = Array_lit (List.map tx elems) } ]
  | Object_lit props ->
    intrinsic "__ceres_created"
      [ { e with e = Object_lit (List.map (fun (k, v) -> (k, tx v)) props) } ]
  | Function_expr f ->
    intrinsic "__ceres_created"
      [ { e with e = Function_expr (tx_func Dependence f) } ]
  | New (callee, args) ->
    intrinsic "__ceres_created"
      [ { e with e = New (tx callee, List.map tx args) } ]
  | Member (o, f) ->
    intrinsic "__ceres_prop_read" [ tx o; string_lit f; line ]
  | Index (o, i) -> intrinsic "__ceres_index_read" [ tx o; tx i; line ]
  | Call (callee, args) ->
    (* Method calls keep their receiver binding and record the callee
       property read. *)
    (match callee.e with
     | Member (o, f) ->
       intrinsic "__ceres_method_call"
         (tx o :: string_lit f :: line :: List.map tx args)
     | Index (o, i) ->
       intrinsic "__ceres_index_method_call"
         (tx o :: tx i :: line :: List.map tx args)
     | _ -> { e with e = Call (tx callee, List.map tx args) })
  | Unop (Typeof, operand) ->
    (* typeof must keep reference-error immunity for bare idents. *)
    (match operand.e with
     | Ident _ -> e
     | _ -> { e with e = Unop (Typeof, tx operand) })
  | Unop (Delete, operand) ->
    (* delete needs the raw reference, not an intercepted read. *)
    { e with e = Unop (Delete, tx_expr_shallow Dependence operand) }
  | Unop (op, operand) -> { e with e = Unop (op, tx operand) }
  | Binop (op, l, r) -> { e with e = Binop (op, tx l, tx r) }
  | Logical (op, l, r) -> { e with e = Logical (op, tx l, tx r) }
  | Cond (c, t, f) -> { e with e = Cond (tx c, tx t, tx f) }
  | Assign (tgt, op, rhs) ->
    let op_name =
      match op with None -> "=" | Some bop -> binop_name bop
    in
    (match tgt with
     | Tgt_ident x ->
       intrinsic "__ceres_var_write"
         [ ident x; line; string_lit op_name; tx rhs ]
     | Tgt_member (o, f) ->
       intrinsic "__ceres_prop_write"
         [ tx o; string_lit f; line; string_lit op_name; tx rhs ]
     | Tgt_index (o, i) ->
       intrinsic "__ceres_index_write"
         [ tx o; tx i; line; string_lit op_name; tx rhs ])
  | Update (kind, prefix, tgt) ->
    let kind_name = match kind with Incr -> "++" | Decr -> "--" in
    let prefix_arg = mk (Bool prefix) in
    (match tgt with
     | Tgt_ident x ->
       intrinsic "__ceres_var_update"
         [ ident x; line; string_lit kind_name; prefix_arg ]
     | Tgt_member (o, f) ->
       intrinsic "__ceres_prop_update"
         [ tx o; string_lit f; line; string_lit kind_name; prefix_arg ]
     | Tgt_index (o, i) ->
       intrinsic "__ceres_index_update"
         [ tx o; tx i; line; string_lit kind_name; prefix_arg ])
  | Seq (l, r) -> { e with e = Seq (tx l, tx r) }
  | Intrinsic (name, args) -> { e with e = Intrinsic (name, List.map tx args) }

(* For-head expressions: writes to plain variables at the top level of
   the expression (through [,]-sequences) are induction-variable
   updates; anything else is instrumented normally. *)
and tx_induction (e : expr) : expr =
  match e.e with
  | Seq (l, r) -> { e with e = Seq (tx_induction l, tx_induction r) }
  | Assign (Tgt_ident x, op, rhs) ->
    let op_name = match op with None -> "=" | Some b -> binop_name b in
    intrinsic "__ceres_induction_write"
      [ ident x; line_arg e.at; string_lit op_name; tx_expr_dep rhs ]
  | Update (kind, prefix, Tgt_ident x) ->
    let kind_name = match kind with Incr -> "++" | Decr -> "--" in
    intrinsic "__ceres_induction_update"
      [ ident x; line_arg e.at; string_lit kind_name; mk (Bool prefix) ]
  | _ -> tx_expr_dep e

let program mode (p : program) : program =
  (* the rewrite introduces new nodes (and shares untouched subtrees
     with the input), so any prior resolution is void: the driver
     re-resolves the instrumented program from scratch *)
  { p with
    stmts = List.map (tx_stmt mode) p.stmts;
    glayout = None;
    resolved_for = None }

let mode_name = function
  | Lightweight -> "lightweight"
  | Loop_profile -> "loop-profile"
  | Dependence -> "dependence"
