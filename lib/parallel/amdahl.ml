(* Amdahl's-law bounds (paper Sec. 4.2 closing paragraph).

   The paper: "Considering Amdahl's law, the upper bound for speedup is
   greater than 3x for 5 of the 12 applications when only counting easy
   to parallelize loops." Given the fraction of an application's
   running time spent in easily-parallelizable loops, these helpers
   compute the bound for worker counts and the asymptote. *)

let speedup ~parallel_fraction ~workers =
  let p = Float.max 0. (Float.min 1. parallel_fraction) in
  if workers <= 0 then
    if p >= 1. then Float.infinity else 1. /. (1. -. p)
  else 1. /. ((1. -. p) +. (p /. float_of_int workers))

let asymptote ~parallel_fraction = speedup ~parallel_fraction ~workers:0

(* Sweep a fraction over worker counts; used by the `amdahl` bench
   section. *)
let sweep ~parallel_fraction ~workers_list =
  List.map
    (fun w -> (w, speedup ~parallel_fraction ~workers:w))
    workers_list

(* Minimum parallel fraction needed to reach a target speedup with
   unlimited workers: p >= 1 - 1/s. *)
let fraction_for ~target_speedup =
  if target_speedup <= 1. then 0. else 1. -. (1. /. target_speedup)

(* Efficiency of the measured speedup vs the ideal at [workers]. *)
let efficiency ~measured_speedup ~workers =
  if workers <= 0 then 0.
  else measured_speedup /. float_of_int workers

(* Karp–Flatt experimentally-determined serial fraction: inverts
   Amdahl's law on a *measured* speedup, e = (1/s - 1/n) / (1 - 1/n).
   A fraction that grows with n exposes scheduling overhead the
   asymptotic bound hides; the speedup bench reports it next to the
   raw ratios. *)
let karp_flatt ~measured_speedup ~workers =
  if workers <= 1 || measured_speedup <= 0. then 1.
  else
    let s = measured_speedup and n = float_of_int workers in
    ((1. /. s) -. (1. /. n)) /. (1. -. (1. /. n))
