(** Open-addressing snapshot table for the dependence runtime.

    Maps packed non-negative int keys to last-access stamps — a frozen
    flat mark array plus an event sequence number — without boxing
    keys or values. A stored sequence of 0 marks a logically absent
    (consumed) entry; live snapshots always carry sequences >= 2. *)

type t

val create : int -> t
(** Capacity hint (rounded up to a power of two). *)

val find : t -> int -> int
(** Slot of the key, or -1. A found slot may still hold a consumed
    entry: check [seq] > 0. *)

val seq : t -> int -> int
(** Sequence stored at a slot returned by [find] (0 = consumed). *)

val marks : t -> int -> int array
(** Frozen mark array stored at a slot returned by [find]. *)

val consume : t -> int -> unit
(** Logically remove the entry at a slot (sets its sequence to 0). *)

val set : t -> int -> int array -> int -> unit
(** [set t key marks seq] inserts or overwrites, reviving a consumed
    slot in place; resizes (dropping consumed entries) past 2/3 load. *)
