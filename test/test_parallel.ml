(* Domain pool, parallel combinators and the speculative executor.
   This container may expose a single core; every test here checks
   correctness (results, exceptions, abort reasons), never speedup. *)

let qtest = QCheck_alcotest.to_alcotest

let test_parallel_for_covers_range () =
  Js_parallel.Pool.with_pool ~domains:3 (fun p ->
      let n = 10_000 in
      let hits = Array.make n 0 in
      Js_parallel.Pool.parallel_for p ~lo:0 ~hi:n (fun i ->
          hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "every index exactly once" true
        (Array.for_all (fun h -> h = 1) hits))

let test_parallel_for_empty_and_tiny () =
  Js_parallel.Pool.with_pool ~domains:2 (fun p ->
      let count = Atomic.make 0 in
      Js_parallel.Pool.parallel_for p ~lo:5 ~hi:5 (fun _ ->
          Atomic.incr count);
      Alcotest.(check int) "empty range" 0 (Atomic.get count);
      Js_parallel.Pool.parallel_for p ~lo:5 ~hi:6 (fun _ ->
          Atomic.incr count);
      Alcotest.(check int) "single-element range" 1 (Atomic.get count))

let test_parallel_for_exception_propagates () =
  Js_parallel.Pool.with_pool ~domains:2 (fun p ->
      match
        Js_parallel.Pool.parallel_for p ~lo:0 ~hi:100 (fun i ->
            if i = 37 then failwith "boom")
      with
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
      | () -> Alcotest.fail "expected exception");
  (* pool remains usable after a failed loop *)
  Js_parallel.Pool.with_pool ~domains:2 (fun p ->
      (try
         Js_parallel.Pool.parallel_for p ~lo:0 ~hi:10 (fun _ ->
             failwith "first")
       with Failure _ -> ());
      let sum =
        Js_parallel.Pool.parallel_reduce p ~lo:1 ~hi:11 ~init:0
          ~body:(fun i -> i)
          ~combine:( + ) ()
      in
      Alcotest.(check int) "pool survives exceptions" 55 sum)

let test_parallel_reduce_sum () =
  Js_parallel.Pool.with_pool ~domains:4 (fun p ->
      let sum =
        Js_parallel.Pool.parallel_reduce p ~lo:0 ~hi:100_000 ~init:0
          ~body:(fun i -> i)
          ~combine:( + ) ()
      in
      Alcotest.(check int) "gauss" (100_000 * 99_999 / 2) sum)

let prop_reduce_matches_sequential_fold =
  QCheck.Test.make ~name:"parallel_reduce = List fold" ~count:30
    QCheck.(pair (int_range 1 4) (int_range 0 500))
    (fun (domains, n) ->
       Js_parallel.Pool.with_pool ~domains (fun p ->
           let body i = (i * 7) mod 13 in
           let par =
             Js_parallel.Pool.parallel_reduce p ~lo:0 ~hi:n ~init:0 ~body
               ~combine:( + ) ()
           in
           let seq = List.fold_left ( + ) 0 (List.init n body) in
           par = seq))

let test_map_array () =
  Js_parallel.Pool.with_pool ~domains:3 (fun p ->
      let src = Array.init 1000 (fun i -> i) in
      let dst = Js_parallel.Pool.map_array p (fun x -> x * x) src in
      Alcotest.(check bool) "squares" true
        (Array.for_all2 (fun a b -> a * a = b) src dst);
      Alcotest.(check (array int)) "empty array" [||]
        (Js_parallel.Pool.map_array p (fun x -> x) [||]))

let test_pool_shutdown_idempotent () =
  let p = Js_parallel.Pool.create ~domains:2 () in
  Js_parallel.Pool.parallel_for p ~lo:0 ~hi:10 (fun _ -> ());
  Js_parallel.Pool.shutdown p;
  Js_parallel.Pool.shutdown p (* second shutdown is a no-op *)

let test_pool_size_clamped () =
  Js_parallel.Pool.with_pool ~domains:0 (fun p ->
      Alcotest.(check int) "at least one participant" 1
        (Js_parallel.Pool.size p))

(* ------------------------------------------------------------------ *)
(* Speculative executor *)

let map_setup =
  "var src = []; var dst = [];\n\
   (function() { for (var i = 0; i < 40; i++) { src.push(i * 3 % 11); } })();"

let test_speculation_commits_on_map () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:"function(i) { dst[i] = src[i] * src[i]; return dst[i]; }"
      ~lo:0 ~hi:40 ()
  with
  | Committed { result; _ } ->
    let seq =
      Js_parallel.Speculative.run_sequential ~setup_src:map_setup
        ~iter_src:"function(i) { dst[i] = src[i] * src[i]; return dst[i]; }"
        ~lo:0 ~hi:40
    in
    Alcotest.(check (float 1e-9)) "parallel = sequential" seq result
  | Aborted r ->
    Alcotest.failf "unexpected abort: %s"
      (Js_parallel.Speculative.abort_reason_to_string r)

let test_speculation_aborts_on_flow () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:
        "function(i) { dst[i] = (i > 0 ? dst[i - 1] : 0) + src[i]; return dst[i]; }"
      ~lo:0 ~hi:40 ()
  with
  | Committed _ -> Alcotest.fail "prefix sum must abort"
  | Aborted (Carried_dependence reasons) ->
    Alcotest.(check bool) "reason names the flow read" true
      (List.exists (Helpers.contains ~sub:"read of property") reasons)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_aborts_on_waw () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:"function(i) { dst[0] = i; return i; }" ~lo:0 ~hi:40 ()
  with
  | Committed _ -> Alcotest.fail "all-write-one-slot must abort"
  | Aborted (Carried_dependence reasons) ->
    Alcotest.(check bool) "reason names the WAW" true
      (List.exists (Helpers.contains ~sub:"repeated write") reasons)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_aborts_on_dom () =
  let setup =
    "var el = document.createElement(\"div\");\n\
     document.body.appendChild(el);"
  in
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:setup
      ~iter_src:"function(i) { el.setAttribute(\"n\", \"\" + i); return i; }"
      ~lo:0 ~hi:10 ()
  with
  | Committed _ -> Alcotest.fail "DOM loop must abort"
  | Aborted (Dom_access n) -> Alcotest.(check bool) "counted" true (n > 0)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_reports_runtime_errors () =
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:""
      ~iter_src:"function(i) { return missing_function(i); }" ~lo:0 ~hi:4 ()
  with
  | Committed _ -> Alcotest.fail "must abort"
  | Aborted (Runtime_error msg) ->
    Alcotest.(check bool) "mentions the reference error" true
      (Helpers.contains ~sub:"missing_function" msg)
  | Aborted other ->
    Alcotest.failf "wrong abort reason: %s"
      (Js_parallel.Speculative.abort_reason_to_string other)

let test_speculation_reduction_accumulator_allowed () =
  (* the harness's own __acc accumulation must not abort the loop *)
  match
    Js_parallel.Speculative.run ~domains:2 ~setup_src:map_setup
      ~iter_src:"function(i) { return src[i]; }" ~lo:0 ~hi:40 ()
  with
  | Committed { result; _ } ->
    Alcotest.(check bool) "sum positive" true (result > 0.)
  | Aborted r ->
    Alcotest.failf "unexpected abort: %s"
      (Js_parallel.Speculative.abort_reason_to_string r)

(* ------------------------------------------------------------------ *)
(* Native kernels: parallel equals sequential *)

let test_kernels_parallel_equals_sequential () =
  List.iter
    (fun (k : Workloads.Kernels.kernel) ->
       let size = max 32 (k.default_size / 8) in
       let seq = k.run size in
       let par =
         Js_parallel.Pool.with_pool ~domains:2 (fun p -> k.run ~pool:p size)
       in
       Alcotest.(check bool)
         (k.kname ^ " checksum equality")
         true
         (Float.abs (seq -. par) < (1e-9 *. Float.abs seq) +. 1e-9))
    Workloads.Kernels.all

let suite =
  [ ("parallel_for coverage", `Quick, test_parallel_for_covers_range);
    ("parallel_for edge ranges", `Quick, test_parallel_for_empty_and_tiny);
    ("parallel_for exceptions", `Quick, test_parallel_for_exception_propagates);
    ("parallel_reduce sum", `Quick, test_parallel_reduce_sum);
    qtest prop_reduce_matches_sequential_fold;
    ("map_array", `Quick, test_map_array);
    ("shutdown idempotent", `Quick, test_pool_shutdown_idempotent);
    ("pool size clamped", `Quick, test_pool_size_clamped);
    ("speculation commits on map", `Quick, test_speculation_commits_on_map);
    ("speculation aborts on flow", `Quick, test_speculation_aborts_on_flow);
    ("speculation aborts on WAW", `Quick, test_speculation_aborts_on_waw);
    ("speculation aborts on DOM", `Quick, test_speculation_aborts_on_dom);
    ("speculation reports errors", `Quick, test_speculation_reports_runtime_errors);
    ("speculation allows reduction", `Quick, test_speculation_reduction_accumulator_allowed);
    ("kernels parallel = sequential", `Slow, test_kernels_parallel_equals_sequential) ]
