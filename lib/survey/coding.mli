(** Qualitative thematic coding of open-ended answers (paper Sec. 2.1).

    Two coders develop a codebook (category -> trigger phrases), code
    every answer, and validate by inter-rater agreement — the paper
    reports a Jaccard coefficient over 0.80 on 20% of the data. *)

type codebook = (Types.trend_category * string list) list

val rater_a : codebook
(** The refined codebook; Figure 1 is aggregated with it. *)

val rater_b : codebook
(** Independently developed: fewer synonyms, a couple of divergent
    triggers — the disagreements the Jaccard validation absorbs. *)

val contains_phrase : string -> string -> bool
(** [contains_phrase haystack phrase] — substring match; the haystack
    should already be lower-cased. *)

val code : codebook -> string -> Types.trend_category list
(** All categories whose triggers appear in the answer. *)

val principal_category : codebook -> string -> Types.trend_category option
(** The answer's single coded category (first match in the paper's
    category order); [None] for uncodeable answers. *)

val inter_rater_agreement :
  ?fraction:float -> ?seed:int -> Types.respondent array -> float
(** Mean per-document Jaccard coefficient between the two raters' code
    sets over a deterministic [fraction] sample (default 0.2, the
    paper's protocol). *)
