(* The service core: one [run] that every consumer routes through.

   Execution mirrors what [Workloads.Harness.map_workloads_supervised]
   used to hand-wire at each call site: a per-workload chaos session
   keyed on the workload *name* (so injected failure sets stay a pure
   function of the seed, independent of scheduling), supervised by
   [Js_parallel.Supervisor.run] with the service's retry and watchdog
   policy. On top of that sit the result cache and the batcher. *)

module Json = Ceres_util.Json
module Request = Request
module Response = Response
module Cache = Cache
module Batcher = Batcher
module Serve = Serve
module Admission = Admission
module Server = Server
module Loadgen = Loadgen

module Exit = struct
  let ok = 0
  let operational_error = 1
  let verdict = 2
end

type t = {
  pool : Js_parallel.Pool.t option;
  cache : Response.t Cache.t;
  retries : int;
  budget : int64 option;
}

let create ?(jobs = 1) ?(retries = 1) ?watchdog_ms ?cache_capacity () =
  { pool =
      (if jobs > 1 then Some (Js_parallel.Pool.create ~domains:jobs ())
       else None);
    cache = Cache.create ?capacity:cache_capacity ();
    retries;
    budget =
      Option.map
        (fun ms -> Int64.of_int (ms * Workloads.Harness.ticks_per_ms))
        watchdog_ms }

let jobs t =
  match t.pool with Some p -> Js_parallel.Pool.size p | None -> 1

(* ------------------------------------------------------------------ *)

let execute_body (w : Workloads.Workload.t) (req : Request.t) :
  Response.body =
  let cfg = req.Request.config in
  match req.Request.pass with
  | Request.Profile ->
    Response.Profile (Workloads.Harness.run_lightweight ?scale:cfg.scale w)
  | Request.Loops ->
    let ctx, lp = Workloads.Harness.run_loop_profile ?scale:cfg.scale w in
    Response.Loops (Ceres.Report.loop_profile_report lp ctx.infos)
  | Request.Deps ->
    let focus = Option.map (fun id -> [ id ]) cfg.focus in
    let ctx, rt = Workloads.Harness.run_dependence ?focus w in
    Response.Deps
      (Ceres.Report.dependence_report
         ~title:(Printf.sprintf "dependence analysis of %s" w.name)
         rt ctx.infos)
  | Request.Analyze ->
    Response.Analyze
      (Analysis.Driver.analyze (Jsir.Parser.parse_program w.source))
  | Request.Crossval -> Response.Crossval (Workloads.Harness.crossval w)
  | Request.Pipeline ->
    let timing = Workloads.Harness.run_lightweight ?scale:cfg.scale w in
    let rows = Workloads.Harness.inspect ?max_nests:cfg.max_nests w in
    Response.Pipeline (timing, rows)
  | Request.Advise ->
    Response.Advise (Advisor.analyze ?cores:cfg.cores w)

(* Supervised execution of a cache miss; fills the cache on success.
   Failures are not cached: a transient fault must not be replayed
   from the cache after the fault is gone. *)
let compute t (w : Workloads.Workload.t) (req : Request.t) key =
  let session = Js_parallel.Fault.session ~key:w.Workloads.Workload.name in
  match
    Js_parallel.Supervisor.run ~retries:t.retries ?budget:t.budget
      (fun () ->
         Js_parallel.Fault.attempt_gate session;
         Js_parallel.Fault.with_session session (fun () ->
             execute_body w req))
  with
  | Ok body ->
    let resp = Response.ok req body in
    Cache.add t.cache key resp;
    resp
  | Error fl ->
    let resp = Response.of_failure req fl in
    (* A failure whose exception was the vclock watchdog is a missed
       per-request deadline: visible in the server telemetry. *)
    if Response.timed_out resp then
      Js_parallel.Telemetry.note_request_timed_out ();
    resp

let unknown_workload req =
  Response.error ~request:req Response.Unknown_workload
    (Printf.sprintf "unknown workload %S; available: %s" req.Request.workload
       (String.concat ", " Workloads.Registry.names))

(* Resolve the registry name (case-insensitive) and normalize the
   echoed request so responses always carry the canonical name. *)
let resolve (req : Request.t) =
  match Workloads.Registry.find req.Request.workload with
  | None -> Error (unknown_workload req)
  | Some w ->
    let req = { req with Request.workload = w.Workloads.Workload.name } in
    Ok (req, w, Request.key ~source:w.Workloads.Workload.source req)

let run t req =
  match resolve req with
  | Error resp -> resp
  | Ok (req, w, key) -> (
      match Cache.find t.cache key with
      | Some resp -> resp
      | None -> compute t w req key)

let run_batch t reqs =
  (* Probe the cache in request order first, then fan the distinct
     misses out as one wave. *)
  let items =
    List.map
      (fun req ->
         match resolve req with
         | Error resp -> Either.Right resp
         | Ok (req, w, key) -> (
             match Cache.find t.cache key with
             | Some resp -> Either.Right resp
             | None -> Either.Left (req, w, key)))
      reqs
  in
  let misses =
    List.filter_map
      (function Either.Left m -> Some m | Either.Right _ -> None)
      items
  in
  let computed =
    (* [compute] confines workload failures itself (Supervisor.run),
       but a bug in the service layer — cache, keying, report
       rendering — must cost one error response, not the wave. *)
    Batcher.run ?pool:t.pool
      ~recover:(fun (req, _, _) exn ->
        Response.error ~request:req Response.Workload_failed
          ("internal: " ^ Printexc.to_string exn))
      ~key:(fun (_, _, k) -> k)
      ~exec:(fun (req, w, key) -> compute t w req key)
      misses
  in
  let remaining = ref computed in
  List.map
    (function
      | Either.Right resp -> resp
      | Either.Left _ ->
        (match !remaining with
         | resp :: rest ->
           remaining := rest;
           resp
         | [] -> assert false))
    items

let cache_stats t = Cache.stats t.cache
let cache t = t.cache

let pool_stats t = Option.map Js_parallel.Pool.stats t.pool

let handler t : Serve.handler =
  { exec = run t;
    exec_batch = run_batch t;
    cache_stats = (fun () -> cache_stats t);
    cache_clear = (fun () -> Cache.clear t.cache);
    telemetry =
      (fun () -> Option.map Js_parallel.Telemetry.json_of_stats (pool_stats t));
    health =
      (fun () ->
         Obj [ ("status", Str "ok"); ("transport", Str "stdio") ]) }

let serve_channels ?max_request_bytes t ic oc =
  Serve.serve ?max_request_bytes (handler t) ic oc

let shutdown t =
  match t.pool with None -> () | Some p -> Js_parallel.Pool.shutdown p
