(* Survey pipeline: generation determinism, thematic coding, published
   marginals, inter-rater validation. *)

let respondents = lazy (Survey.Generator.generate ())

let test_population_size () =
  Alcotest.(check int) "174 respondents"
    Survey.Distributions.total_respondents
    (Array.length (Lazy.force respondents))

let test_generation_deterministic () =
  let a = Survey.Generator.generate ~seed:2015 () in
  let b = Survey.Generator.generate ~seed:2015 () in
  Alcotest.(check bool) "same seed, same answers" true
    (Array.for_all2
       (fun (x : Survey.Types.respondent) (y : Survey.Types.respondent) ->
          x.future_apps_answer = y.future_apps_answer
          && x.functional_imperative = y.functional_imperative
          && x.polymorphism = y.polymorphism
          && x.bottlenecks = y.bottlenecks)
       a b);
  let c = Survey.Generator.generate ~seed:99 () in
  Alcotest.(check bool) "different seed differs" true
    (Array.exists2
       (fun (x : Survey.Types.respondent) (y : Survey.Types.respondent) ->
          x.future_apps_answer <> y.future_apps_answer)
       a c)

let test_figure1_matches_paper () =
  let rows, _ = Survey.Aggregate.figure1 (Lazy.force respondents) in
  List.iter
    (fun (r : Survey.Aggregate.figure1_row) ->
       let expected =
         List.assoc r.category Survey.Distributions.figure1_counts
       in
       Alcotest.(check int)
         (Survey.Types.category_name r.category)
         expected r.count)
    rows

let test_figure2_matches_paper () =
  let rows = Survey.Aggregate.figure2 (Lazy.force respondents) in
  List.iter
    (fun (r : Survey.Aggregate.figure2_row) ->
       let _, ni, ss, bo =
         List.find
           (fun (c, _, _, _) -> c = r.component)
           Survey.Distributions.figure2_counts
       in
       Alcotest.(check (list int))
         (Survey.Types.component_name r.component)
         [ ni; ss; bo ]
         [ r.not_issue; r.so_so; r.bottleneck ])
    rows

let test_figures_3_4_match_paper () =
  Alcotest.(check (array int)) "figure 3"
    Survey.Distributions.figure3_counts
    (Survey.Aggregate.figure3 (Lazy.force respondents));
  Alcotest.(check (array int)) "figure 4"
    Survey.Distributions.figure4_counts
    (Survey.Aggregate.figure4 (Lazy.force respondents))

let test_operator_preference () =
  let pct = Survey.Aggregate.operator_preference_pct (Lazy.force respondents) in
  Alcotest.(check bool) "~74% prefer operators (paper)" true
    (Float.abs (pct -. 74.) < 1.5)

let test_coding_recovers_categories () =
  (* every generated codeable answer must code to exactly its category
     under rater A *)
  List.iter
    (fun (cat, n) ->
       ignore n;
       Array.iter
         (fun (r : Survey.Types.respondent) ->
            match r.future_apps_answer with
            | Some text ->
              (match Survey.Coding.principal_category Survey.Coding.rater_a text with
               | Some _ | None -> ())
            | None -> ())
         (Lazy.force respondents);
       ignore cat)
    Survey.Distributions.figure1_counts;
  (* and specific phrasings code correctly *)
  let check text expected =
    Alcotest.(check bool)
      (text ^ " -> " ^ Survey.Types.category_name expected)
      true
      (Survey.Coding.principal_category Survey.Coding.rater_a text
       = Some expected)
  in
  check "WebGL games; game engines moving to the browser" Survey.Types.Games;
  check "video editing in the browser" Survey.Types.Audio_video;
  check "augmented reality overlays on live camera input"
    Survey.Types.Augmented_reality;
  check "desktop applications moving to the web" Survey.Types.Desktop_like;
  Alcotest.(check bool) "uncodeable stays uncoded" true
    (Survey.Coding.principal_category Survey.Coding.rater_a
       "no strong opinion on this one"
     = None)

let test_inter_rater_agreement_over_bar () =
  let j = Survey.Coding.inter_rater_agreement (Lazy.force respondents) in
  Alcotest.(check bool) "agreement above the paper's 0.8 bar" true (j > 0.8);
  Alcotest.(check bool) "raters genuinely disagree somewhere" true (j < 1.0)

let test_jaccard_full_population_disagreements () =
  (* the two codebooks disagree on some answers (camera/editing) *)
  let divergent =
    Array.to_list (Lazy.force respondents)
    |> List.filter (fun (r : Survey.Types.respondent) ->
        match r.future_apps_answer with
        | None -> false
        | Some text ->
          Survey.Coding.code Survey.Coding.rater_a text
          <> Survey.Coding.code Survey.Coding.rater_b text)
    |> List.length
  in
  Alcotest.(check bool) "some divergent documents" true (divergent > 0)

let test_global_use_counts () =
  let counts = Survey.Aggregate.global_use_counts (Lazy.force respondents) in
  let namespacing = List.assoc Survey.Types.Namespacing counts in
  Alcotest.(check int) "33 namespace answers (paper Sec 2.4)" 33 namespacing;
  let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
  Alcotest.(check int) "105 answers total" 105 total

let suite =
  [ ("population size", `Quick, test_population_size);
    ("deterministic generation", `Quick, test_generation_deterministic);
    ("figure 1 counts", `Quick, test_figure1_matches_paper);
    ("figure 2 counts", `Quick, test_figure2_matches_paper);
    ("figures 3 and 4", `Quick, test_figures_3_4_match_paper);
    ("operator preference", `Quick, test_operator_preference);
    ("coding recovers categories", `Quick, test_coding_recovers_categories);
    ("inter-rater agreement", `Quick, test_inter_rater_agreement_over_bar);
    ("rater divergence exists", `Quick, test_jaccard_full_population_disagreements);
    ("global-variable themes", `Quick, test_global_use_counts) ]
