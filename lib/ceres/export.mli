(** Report export (paper Fig. 5, steps 5-7).

    The paper's proxy committed per-application reports to a git
    repository; we write the same content as markdown files and leave
    versioning to the enclosing repository. *)

val write_report :
  dir:string ->
  name:string ->
  sections:(string * [ `Text of string | `Code of string ]) list ->
  string
(** [write_report ~dir ~name ~sections] creates [dir] if needed and
    writes [dir/<sanitised name>.md] assembled from titled sections
    ([`Code] sections are fenced); returns the path written. *)
