(* Loop-profiling mode (paper Sec. 3.2).

   For every syntactic loop: the number of instances encountered, and
   the total/average/variance of (1) per-instance running time, (2)
   per-instance trip count, and (3) per-iteration running time, all via
   Welford's online algorithm. The per-iteration series additionally
   feeds the control-flow-divergence heuristic used for Table 3. *)

type loop_stats = {
  id : Jsir.Ast.loop_id;
  time : Ceres_util.Welford.t; (* ms per instance *)
  trips : Ceres_util.Welford.t; (* trip count per instance *)
  iter_time : Ceres_util.Welford.t; (* ms per iteration *)
}

type open_instance = {
  oloop : Jsir.Ast.loop_id;
  started : int64; (* busy vticks at instance entry *)
  mutable otrips : int;
  mutable last_iter_started : int64;
}

type t = {
  clock : Ceres_util.Vclock.t;
  stats : loop_stats array;
  mutable open_stack : open_instance list;
}

let create clock (infos : Jsir.Loops.info array) =
  { clock;
    stats =
      Array.init (Array.length infos) (fun id ->
          { id;
            time = Ceres_util.Welford.create ();
            trips = Ceres_util.Welford.create ();
            iter_time = Ceres_util.Welford.create () });
    open_stack = [] }

let busy t = Ceres_util.Vclock.busy t.clock
let ms t ticks = Ceres_util.Vclock.to_ms t.clock ticks

let on_enter t id =
  let now = busy t in
  t.open_stack <-
    { oloop = id; started = now; otrips = 0; last_iter_started = now }
    :: t.open_stack

let close_iteration t (inst : open_instance) now =
  if inst.otrips > 0 then
    Ceres_util.Welford.add t.stats.(inst.oloop).iter_time
      (ms t (Int64.sub now inst.last_iter_started))

let on_iter t id =
  match t.open_stack with
  | inst :: _ when inst.oloop = id ->
    let now = busy t in
    close_iteration t inst now;
    inst.otrips <- inst.otrips + 1;
    inst.last_iter_started <- now
  | _ ->
    (match List.find_opt (fun i -> i.oloop = id) t.open_stack with
     | Some inst ->
       let now = busy t in
       close_iteration t inst now;
       inst.otrips <- inst.otrips + 1;
       inst.last_iter_started <- now
     | None -> ())

let on_exit t id =
  let now = busy t in
  let rec split acc = function
    | [] -> (None, List.rev acc)
    | inst :: rest when inst.oloop = id -> (Some inst, List.rev_append acc rest)
    | inst :: rest -> split (inst :: acc) rest
  in
  let found, remaining = split [] t.open_stack in
  t.open_stack <- remaining;
  match found with
  | None -> ()
  | Some inst ->
    close_iteration t inst now;
    let s = t.stats.(id) in
    Ceres_util.Welford.add s.time (ms t (Int64.sub now inst.started));
    Ceres_util.Welford.add s.trips (float_of_int inst.otrips)

let stats t id = t.stats.(id)

(* Loops by descending total time, restricted to roots of syntactic
   nests — the unit the paper inspects ("the top loop nests that,
   together, make up at least two thirds of the time spent in loops"). *)
let hottest_roots t (infos : Jsir.Loops.info array) =
  Jsir.Loops.roots infos
  |> List.map (fun (info : Jsir.Loops.info) -> t.stats.(info.id))
  |> List.filter (fun s -> Ceres_util.Welford.count s.time > 0)
  |> List.sort (fun a b ->
      compare (Ceres_util.Welford.total b.time) (Ceres_util.Welford.total a.time))

(* Smallest prefix of [hottest_roots] covering [fraction] of the total
   root-loop time. *)
let covering_nests t infos ~fraction =
  let roots = hottest_roots t infos in
  let total =
    List.fold_left
      (fun acc s -> acc +. Ceres_util.Welford.total s.time)
      0. roots
  in
  if total <= 0. then []
  else begin
    let rec take acc covered = function
      | [] -> List.rev acc
      | s :: rest ->
        if covered >= fraction *. total then List.rev acc
        else
          take (s :: acc) (covered +. Ceres_util.Welford.total s.time) rest
    in
    take [] 0. roots
  end

let total_root_time_ms t infos =
  Jsir.Loops.roots infos
  |> List.fold_left
       (fun acc (info : Jsir.Loops.info) ->
          acc +. Ceres_util.Welford.total t.stats.(info.id).time)
       0.
