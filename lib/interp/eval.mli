(** Tree-walking evaluator for MiniJS.

    Evaluation advances the state's virtual clock by a small cost per
    operation — this is what makes the reproduction's timings
    deterministic. {!Jsir.Ast.Intrinsic} nodes dispatch to the handlers
    registered in [state.intrinsics]; an uninstrumented program runs
    with zero analysis overhead, mirroring the paper's staged
    methodology. *)

open Value

(** Statement completion (exceptions travel as {!Value.Js_throw}). *)
type completion =
  | Cnormal
  | Creturn of value
  | Cbreak of string option (** optional target label *)
  | Ccontinue of string option

val create :
  ?seed:int -> ?budget:int64 -> ?ticks_per_ms:int -> unit -> state
(** Fresh interpreter state with the prototype graph tied and [apply]
    installed; builtins are installed separately
    ({!Builtins.install}). *)

val run_program : ?resolve:bool -> state -> Jsir.Ast.program -> unit
(** Resolve the program against the state's symbol table (unless
    [~resolve:false] — kept for differential testing of the dynamic
    path), hoist into the global scope and execute; a [Js_throw]
    escaping the program propagates to the caller. *)

val eval_in_global : state -> Jsir.Ast.expr -> value
(** Evaluate one expression in the global scope (tests, REPL-ish
    uses). *)

(** {1 Building blocks} (used by the analysis glue and host functions) *)

val eval : state -> scope -> value -> Jsir.Ast.expr -> value
(** [eval st scope this e]. *)

val exec_stmt : state -> scope -> value -> Jsir.Ast.stmt -> completion
val exec_stmts : state -> scope -> value -> Jsir.Ast.stmt list -> completion

val call : state -> value -> value -> value list -> value
(** [call st callee this args]; raises a catchable TypeError for
    non-callables and RangeError past [max_call_depth]. *)

val construct : state -> value -> value list -> value
(** [new callee(args)]. *)

val get_prop : state -> value -> string -> value
(** Property access on arbitrary values (string indexing/length,
    prototype methods for primitives); throws on [null]/[undefined]. *)

val set_prop : state -> value -> string -> value -> unit
(** Writes to DOM-tagged elements are reported as host DOM accesses. *)

val eval_binop : state -> Jsir.Ast.binop -> value -> value -> value
(** The binary-operator semantics, exposed for compound-assignment
    intrinsic handlers. *)

val make_closure : state -> scope -> Jsir.Ast.func -> obj
val hoist_into : state -> scope -> Jsir.Ast.stmt list -> unit
(** [var] and function-declaration hoisting for a body about to run in
    [scope]. *)

val tick : state -> int -> unit
(** Advance the virtual clock by a cost; fires the state's [on_tick]
    probe (if armed) and raises {!Value.Budget_exhausted} past the
    state's budget. *)

val default_budget : int64
