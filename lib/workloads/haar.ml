(* HAAR.js — Viola-Jones face detection (Table 1, "User recognition").

   Structure mirrors the real library's hot paths:
   - grayscale + integral image computed in *functional* style
     (map/forEach) — heavy work that is NOT inside syntactic loops,
     which is why the paper's lightweight numbers show HAAR active for
     2 s but only 0.44 s in loops;
   - nest A: the multi-scale sliding-window scan (little divergence,
     ~tens of trips per loop, easy to parallelize);
   - nest B: per-candidate cascade evaluation that walks a weak
     classifier tree of data-dependent depth (the paper: "a recursive
     search through a tree which makes the iterations uneven"). *)

let source = {|
var W = Math.floor(30 * SCALE) + 6;
var H = Math.floor(30 * SCALE) + 6;
var detections = 0;
var candidatesTried = 0;

var canvas = document.createElement("canvas");
canvas.width = W; canvas.height = H;
canvas.id = "haar-canvas";
document.body.appendChild(canvas);
var ctx = canvas.getContext("2d");

// synthetic "photo": deterministic texture, built functionally
function makePixels() {
  return new Array(W * H).map(function(ignored, i) {
    var x = i % W;
    var y = Math.floor(i / W);
    return { r: (x * 7 + y * 13) % 256, g: (x * 3 + y * 29) % 256, b: (x * 11 + y * 5) % 256 };
  });
}

// functional-style preprocessing: no syntactic loops here
function grayscale(px) {
  return px.map(function(p) { return (p.r * 0.299 + p.g * 0.587 + p.b * 0.114); });
}
function smooth(gray) {
  return gray.map(function(g, i) {
    var left = i > 0 ? gray[i - 1] : g;
    var right = i + 1 < gray.length ? gray[i + 1] : g;
    return (left + 2 * g + right) / 4;
  });
}
function integralImage(gray) {
  var ii = new Array(W * H);
  gray.forEach(function(g, i) {
    var x = i % W;
    var y = Math.floor(i / W);
    var left = x > 0 ? ii[i - 1] : 0;
    var up = y > 0 ? ii[i - W] : 0;
    var diag = (x > 0 && y > 0) ? ii[i - W - 1] : 0;
    ii[i] = g + left + up - diag;
  });
  return ii;
}
// squared integral image, for the variance normalisation pass
function squaredIntegral(gray) {
  var ii2 = new Array(W * H);
  gray.forEach(function(g, i) {
    var x = i % W;
    var y = Math.floor(i / W);
    var left = x > 0 ? ii2[i - 1] : 0;
    var up = y > 0 ? ii2[i - W] : 0;
    var diag = (x > 0 && y > 0) ? ii2[i - W - 1] : 0;
    ii2[i] = g * g + left + up - diag;
  });
  return ii2;
}
function rectSum(ii, x, y, w, h) {
  var a = (y > 0 && x > 0) ? ii[(y - 1) * W + (x - 1)] : 0;
  var b = (y > 0) ? ii[(y - 1) * W + (x + w - 1)] : 0;
  var c = (x > 0) ? ii[(y + h - 1) * W + (x - 1)] : 0;
  var d = ii[(y + h - 1) * W + (x + w - 1)];
  return d - b - c + a;
}

// a tiny cascade: stages of weak classifiers arranged as binary trees
function makeCascade() {
  var stages = [];
  var s;
  for (s = 0; s < 3; s++) {
    var nodes = [];
    var n;
    for (n = 0; n < 15; n++) {
      nodes.push({
        fx: (n * 3 + s) % 6, fy: (n * 5 + s) % 6, fw: 3 + (n % 4), fh: 3 + ((n + s) % 4),
        threshold: 860 + 41 * n + 23 * s,
        // chain classifier: success advances, failure exits, so the
        // walk length is data dependent (1..15 nodes)
        left: n + 1 < 15 ? n + 1 : -1,
        right: -1
      });
    }
    stages.push({ nodes: nodes, passThreshold: 2 + s });
  }
  return stages;
}

var cascade = makeCascade();
var candidates = [];

// nest A: multi-scale sliding-window scan with variance
// normalisation (Viola-Jones prefilter: flat windows cannot contain a
// face)
function scanWindows(ii, ii2) {
  candidates = [];
  var scale = 11;
  while (scale < Math.min(W, H)) {
    var step = Math.max(2, Math.floor(scale / 4));
    var y;
    for (y = 0; y + scale < H; y += step) {
      var x;
      for (x = 0; x + scale < W; x += step) {
        var area = scale * scale;
        var mean = rectSum(ii, x, y, scale, scale) / area;
        var sqMean = rectSum(ii2, x, y, scale, scale) / area;
        var variance = sqMean - mean * mean;
        var sd = variance > 0 ? Math.sqrt(variance) : 0;
        if (mean > 60 && mean < 200 && sd % 16 > 12) {
          candidates.push({ x: x, y: y, size: scale, norm: sd });
        }
      }
    }
    scale = Math.floor(scale * 1.3) + 1;
  }
}

// nest B: cascade evaluation; tree walk of data-dependent depth
function evaluateCandidates(ii) {
  var c;
  for (c = 0; c < candidates.length; c++) {
    var cand = candidates[c];
    var unit = cand.size / 12;
    var passed = 0;
    var s = 0;
    var alive = true;
    while (alive && s < cascade.length) {
      var stage = cascade[s];
      var node = 0;
      var votes = 0;
      // descend the weak-classifier tree; depth depends on the data
      while (node >= 0) {
        var wk = stage.nodes[node];
        var fx = cand.x + Math.floor(wk.fx * unit);
        var fy = cand.y + Math.floor(wk.fy * unit);
        var fw = Math.max(1, Math.floor(wk.fw * unit));
        var fh = Math.max(1, Math.floor(wk.fh * unit));
        var v = rectSum(ii, fx, fy, fw, fh) / (fw * fh);
        if (v > wk.threshold / 8) {
          votes++;
          node = wk.left;
        } else {
          node = wk.right;
        }
      }
      if (votes >= stage.passThreshold) { passed++; } else { alive = false; }
      s++;
    }
    candidatesTried++;
    if (passed === cascade.length) { detections++; }
  }
}

var photo = makePixels();

function detect() {
  var gray = smooth(smooth(grayscale(photo)));
  var ii = integralImage(gray);
  var ii2 = squaredIntegral(gray);
  scanWindows(ii, ii2);
  evaluateCandidates(ii);
  console.log("haar: candidates", candidatesTried, "detections", detections);
}

var button = document.createElement("button");
button.id = "detect-button";
document.body.appendChild(button);
button.addEventListener("click", function(ev) { detect(); });
|}

let workload =
  Workload.make ~name:"HAAR.js" ~url:"github.com/foo123/HAAR.js"
    ~category:"User recognition"
    ~description:"face recognition (Viola-Jones)"
    ~source ~session_ms:8_000.
    ~interactions:(Workload.clicks ~target_id:"detect-button"
                     ~times:[ 900.; 3200.; 5600. ])
    ~dep_scale:0.6 ~hot_nest_count:2 ()
