(* Load generator for the socket server: N client threads each replay
   a deterministic mixed-pass request stream (a pure function of the
   seed and the client index) and record per-request latencies.

   With [chaos_clients] set, a seed-keyed fraction of the requests
   misbehave the way real clients do — torn request lines, disconnects
   before reading the answer, slow-loris byte-at-a-time writes — and
   the client reconnects afterwards; the point is to prove those
   sessions are confined server-side while the report's well-behaved
   requests still complete.

   [dropped_connections] counts only drops the *server* inflicted on a
   well-behaved exchange (EOF or I/O error where a response line was
   owed). Drops the client inflicted on purpose are counted as
   [client_faults]: the acceptance bar is [dropped_connections = 0]
   even under a chaos run. *)

type config = {
  socket_path : string;
  clients : int;
  requests_per_client : int;
  seed : int;
  chaos_clients : bool;
}

type report = {
  sent : int;
  ok : int;
  shed : int;
  errors : int;
  timed_out : int;
  dropped_connections : int;
  client_faults : int;
  wall_ms : float;
  throughput_rps : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Deterministic request stream *)

let passes = [| "profile"; "loops"; "analyze"; "pipeline"; "deps"; "crossval" |]

let request_line ~seed ~client ~request =
  let p =
    Ceres_util.Prng.create
      (Int64.logxor
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (seed + 1)))
         (Int64.of_int ((client * 1_000_003) + request)))
  in
  let names = Array.of_list Workloads.Registry.names in
  let workload = Ceres_util.Prng.pick p names in
  let pass = Ceres_util.Prng.pick p passes in
  Printf.sprintf "{\"pass\": %S, \"workload\": %S}" pass workload

(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

type outcome = Ok_resp | Shed_resp | Timed_out_resp | Error_resp

let classify line =
  if contains ~sub:"\"overloaded\"" line then Shed_resp
  else if contains ~sub:"vclock budget exhausted" line then Timed_out_resp
  else if contains ~sub:"\"error\"" line then Error_resp
  else Ok_resp

type client_tally = {
  mutable c_sent : int;
  mutable c_ok : int;
  mutable c_shed : int;
  mutable c_errors : int;
  mutable c_timed_out : int;
  mutable c_dropped : int;
  mutable c_faults : int;
  mutable c_latencies : float list; (* ms, well-behaved exchanges only *)
}

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    Some (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  with Unix.Unix_error _ ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    None

let close_conn (_, _, oc) = try close_out oc with Sys_error _ -> ()

let run_client cfg ~client tally =
  let conn = ref (connect cfg.socket_path) in
  let reconnect () =
    (match !conn with Some c -> close_conn c | None -> ());
    conn := connect cfg.socket_path
  in
  for request = 1 to cfg.requests_per_client do
    let line = request_line ~seed:cfg.seed ~client ~request in
    let action =
      if cfg.chaos_clients then
        Js_parallel.Fault.client_plan ~seed:cfg.seed ~client ~request
      else Js_parallel.Fault.Client_ok
    in
    tally.c_sent <- tally.c_sent + 1;
    match !conn with
    | None ->
      (* Could not (re)connect: the server refused us a socket — that
         is a real drop. *)
      tally.c_dropped <- tally.c_dropped + 1;
      reconnect ()
    | Some ((_, ic, oc) as c) -> (
        match action with
        | Js_parallel.Fault.Client_torn ->
          (* Half a line, no newline, gone. The server must account a
             torn session without disturbing anyone else. *)
          tally.c_faults <- tally.c_faults + 1;
          (try
             output_string oc (String.sub line 0 (String.length line / 2));
             flush oc
           with Sys_error _ -> ());
          close_conn c;
          conn := connect cfg.socket_path
        | Js_parallel.Fault.Client_disconnect ->
          (* Full request, but vanish before reading the response:
             the server's write hits a broken pipe mid-response. *)
          tally.c_faults <- tally.c_faults + 1;
          (try
             output_string oc line;
             output_char oc '\n';
             flush oc
           with Sys_error _ -> ());
          close_conn c;
          conn := connect cfg.socket_path
        | Js_parallel.Fault.Client_ok | Js_parallel.Fault.Client_slow -> (
            let t0 = Unix.gettimeofday () in
            let sent_ok =
              try
                (match action with
                 | Js_parallel.Fault.Client_slow ->
                   (* Slow-loris: dribble the bytes. The server's
                      per-session thread blocks on *this* session
                      only; nobody else waits behind us. *)
                   String.iter
                     (fun ch ->
                        output_char oc ch;
                        flush oc;
                        Thread.delay 0.0005)
                     line
                 | _ -> output_string oc line);
                output_char oc '\n';
                flush oc;
                true
              with Sys_error _ -> false
            in
            if not sent_ok then begin
              tally.c_dropped <- tally.c_dropped + 1;
              reconnect ()
            end
            else
              match input_line ic with
              | resp ->
                let dt = (Unix.gettimeofday () -. t0) *. 1000. in
                tally.c_latencies <- dt :: tally.c_latencies;
                (match classify resp with
                 | Ok_resp -> tally.c_ok <- tally.c_ok + 1
                 | Shed_resp -> tally.c_shed <- tally.c_shed + 1
                 | Timed_out_resp ->
                   tally.c_timed_out <- tally.c_timed_out + 1
                 | Error_resp -> tally.c_errors <- tally.c_errors + 1)
              | exception (End_of_file | Sys_error _) ->
                tally.c_dropped <- tally.c_dropped + 1;
                reconnect ()))
  done;
  match !conn with Some c -> close_conn c | None -> ()

(* ------------------------------------------------------------------ *)

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
    let idx = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
    sorted.(max 0 (min (n - 1) idx))

let run cfg =
  (* Chaos rounds make the server close sockets under us mid-write;
     that must surface as [Sys_error] per client, not kill the whole
     generator. *)
  Serve.ignore_sigpipe ();
  let tallies =
    Array.init cfg.clients (fun _ ->
        { c_sent = 0; c_ok = 0; c_shed = 0; c_errors = 0; c_timed_out = 0;
          c_dropped = 0; c_faults = 0; c_latencies = [] })
  in
  let t0 = Unix.gettimeofday () in
  let threads =
    Array.to_list
      (Array.mapi
         (fun i tally ->
            Thread.create (fun () -> run_client cfg ~client:(i + 1) tally) ())
         tallies)
  in
  List.iter Thread.join threads;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 tallies in
  let latencies =
    Array.of_list
      (Array.fold_left (fun acc t -> t.c_latencies @ acc) [] tallies)
  in
  Array.sort compare latencies;
  let sent = sum (fun t -> t.c_sent) in
  { sent;
    ok = sum (fun t -> t.c_ok);
    shed = sum (fun t -> t.c_shed);
    errors = sum (fun t -> t.c_errors);
    timed_out = sum (fun t -> t.c_timed_out);
    dropped_connections = sum (fun t -> t.c_dropped);
    client_faults = sum (fun t -> t.c_faults);
    wall_ms;
    throughput_rps =
      (if wall_ms > 0. then float_of_int sent /. (wall_ms /. 1000.) else 0.);
    p50_ms = percentile latencies 0.50;
    p95_ms = percentile latencies 0.95;
    p99_ms = percentile latencies 0.99;
    max_ms = percentile latencies 1.0 }

let report_json (r : report) : Ceres_util.Json.t =
  Obj
    [ ("sent", Int r.sent);
      ("ok", Int r.ok);
      ("shed", Int r.shed);
      ("errors", Int r.errors);
      ("timed_out", Int r.timed_out);
      ("dropped_connections", Int r.dropped_connections);
      ("client_faults", Int r.client_faults);
      ("wall_ms", Fixed (1, r.wall_ms));
      ("throughput_rps", Fixed (1, r.throughput_rps));
      ( "latency_ms",
        Obj
          [ ("p50", Fixed (2, r.p50_ms));
            ("p95", Fixed (2, r.p95_ms));
            ("p99", Fixed (2, r.p99_ms));
            ("max", Fixed (2, r.max_ms)) ] ) ]
