(* Unix-domain socket front-end: N concurrent client sessions
   multiplexed over one service, structured as an explicit

     accept -> parse -> admit -> execute -> respond

   pipeline. Sessions are systhreads (the pool's domains stay
   dedicated to workload fan-out); per-request supervision state is
   thread-local ([Js_parallel.Tls]), so concurrent sessions cannot
   stomp each other's watchdog budgets or chaos sessions.

   Robustness invariants, each exercised by tests:
   - crash confinement: a torn line, oversized frame, bad JSON, or
     mid-request disconnect ends (or answers on) *that* session only;
   - no silent drops: a request the server will not run is answered
     with a structured [overloaded] line carrying [retry_after_ms];
   - graceful drain: SIGTERM or [{"op":"shutdown"}] stops accepting,
     lets in-flight work finish (shedding queued work), force-closes
     stragglers at the drain budget, and exits 0. *)

module Telemetry = Js_parallel.Telemetry
module Fault = Js_parallel.Fault

type config = {
  socket_path : string;
  max_inflight : int;
  queue_capacity : int;
  drain_ms : int;
  max_request_bytes : int;
  max_sessions : int;
  chaos_transport : bool;
}

let default_config ~socket_path =
  { socket_path;
    max_inflight = 4;
    queue_capacity = 16;
    drain_ms = 2000;
    max_request_bytes = Serve.default_max_request_bytes;
    max_sessions = 64;
    chaos_transport = false }

type t = {
  config : config;
  handler : Serve.handler;
  admission : Admission.t;
  listen_fd : Unix.file_descr;
  stop_flag : bool Atomic.t;
  conn_counter : int Atomic.t;
  reg_m : Mutex.t;
  live : (int, Unix.file_descr) Hashtbl.t; (* conn -> session fd *)
  mutable threads : Thread.t list;
}

exception End_session

let register t conn fd thread =
  Mutex.lock t.reg_m;
  Hashtbl.replace t.live conn fd;
  t.threads <- thread :: t.threads;
  Mutex.unlock t.reg_m

let unregister t conn =
  Mutex.lock t.reg_m;
  Hashtbl.remove t.live conn;
  Mutex.unlock t.reg_m

let live_sessions t =
  Mutex.lock t.reg_m;
  let n = Hashtbl.length t.live in
  Mutex.unlock t.reg_m;
  n

let health_doc t () : Ceres_util.Json.t =
  Obj
    [ ( "status",
        Str (if Atomic.get t.stop_flag then "draining" else "ok") );
      ("transport", Str "socket");
      ("inflight", Int (Admission.inflight t.admission));
      ("queued", Int (Admission.waiting t.admission));
      ("sessions", Int (live_sessions t)) ]

let shed_line retry_after_ms =
  Ceres_util.Json.to_string
    (Response.to_json
       (Response.overloaded ~retry_after_ms
          "server overloaded; retry later"))

(* ------------------------------------------------------------------ *)
(* One client session. *)

let run_session t conn fd =
  let handler = { t.handler with health = health_doc t } in
  let plan =
    if t.config.chaos_transport then Fault.transport_plan ~conn else None
  in
  let ic = Unix.in_channel_of_descr fd
  and oc = Unix.out_channel_of_descr fd in
  let sent = ref 0 in
  let dropped = ref false in
  let chaos_key = Printf.sprintf "conn-%d" conn in
  let cut site n =
    dropped := true;
    (try Fault.fire site chaos_key n with Fault.Injected _ -> ());
    raise End_session
  in
  (* Respond, with the chaos plan's transport faults woven in: tearing
     the Nth response mid-write, or cutting the connection right after
     it — exactly what a crashing peer or flaky link does to us. *)
  let emit line =
    incr sent;
    match plan with
    | Some { Fault.torn_after = Some n; _ } when n = !sent ->
      output_string oc (String.sub line 0 (String.length line / 2));
      flush oc;
      cut Fault.Torn n
    | _ ->
      output_string oc line;
      output_char oc '\n';
      flush oc;
      (match plan with
       | Some { Fault.disconnect_after = Some n; _ } when n = !sent ->
         cut Fault.Disconnect n
       | _ -> ())
  in
  let rec loop () =
    match
      Serve.read_line_bounded ~max_bytes:t.config.max_request_bytes ic
    with
    | Serve.Eof { partial } -> if partial then dropped := true
    | Serve.Oversized ->
      emit (Serve.oversized_line t.config.max_request_bytes);
      loop ()
    | Serve.Line raw ->
      let line = String.trim raw in
      if line = "" then loop ()
      else (
        match Ceres_util.Json.of_string line with
        | Error msg ->
          emit (Serve.error_line Response.Bad_request ("invalid JSON: " ^ msg));
          loop ()
        | Ok doc ->
          if Serve.is_op doc then (
            (* Control ops bypass admission: health checks and drain
               requests must work precisely when the gate is full. *)
            match Serve.handle_doc handler doc with
            | Serve.No_reply -> loop ()
            | Serve.Reply out ->
              emit out;
              loop ()
            | Serve.Stop out ->
              emit out;
              Atomic.set t.stop_flag true)
          else (
            match Admission.acquire t.admission with
            | Admission.Shed { retry_after_ms } ->
              emit (shed_line retry_after_ms);
              loop ()
            | Admission.Admitted ->
              let step =
                Fun.protect
                  ~finally:(fun () -> Admission.release t.admission)
                  (fun () -> Serve.handle_doc handler doc)
              in
              (match step with
               | Serve.No_reply -> loop ()
               | Serve.Reply out ->
                 emit out;
                 loop ()
               | Serve.Stop out -> emit out)))
  in
  (try loop () with
   | End_session -> ()
   | End_of_file | Sys_error _ ->
     (* The client vanished or the drain force-closed us: this
        session's problem alone. *)
     dropped := true
   | exn ->
     dropped := true;
     prerr_endline
       (Printf.sprintf "jsceres: session %d died: %s" conn
          (Printexc.to_string exn)));
  if !dropped then Telemetry.note_session_dropped ();
  unregister t conn;
  (* [close_out] flushes and closes the shared fd; the input channel
     must not be closed too (double-close of a numbered fd races with
     fd reuse in other threads). *)
  (try close_out oc with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)

let listen_socket path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 64
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let create ?(config_override = Fun.id) ~socket_path handler =
  let config = config_override (default_config ~socket_path) in
  Serve.ignore_sigpipe ();
  { config;
    handler;
    admission =
      Admission.create ~max_inflight:config.max_inflight
        ~queue_capacity:config.queue_capacity;
    listen_fd = listen_socket config.socket_path;
    stop_flag = Atomic.make false;
    conn_counter = Atomic.make 0;
    reg_m = Mutex.create ();
    live = Hashtbl.create 16;
    threads = [] }

let begin_drain t = Atomic.set t.stop_flag true
let draining t = Atomic.get t.stop_flag

(* Turn away an accepted connection we will not serve (session cap
   reached): still a structured answer, never a silent close. *)
let refuse_session fd =
  let oc = Unix.out_channel_of_descr fd in
  (try
     output_string oc (shed_line 100);
     output_char oc '\n';
     flush oc
   with Sys_error _ -> ());
  Telemetry.note_request_shed ();
  (try close_out oc with Sys_error _ -> ())

let accept_loop t =
  let rec go () =
    if Atomic.get t.stop_flag then ()
    else
      let readable =
        (* Poll so a drain flag set by a signal handler (which cannot
           do more than set the flag) is noticed within 50ms. *)
        match Unix.select [ t.listen_fd ] [] [] 0.05 with
        | [], _, _ -> false
        | _ -> true
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      if (not readable) || Atomic.get t.stop_flag then go ()
      else (
        match Unix.accept t.listen_fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error _ -> go ()
        | fd, _ ->
          let conn = 1 + Atomic.fetch_and_add t.conn_counter 1 in
          let doomed =
            t.config.chaos_transport
            &&
            match Fault.transport_plan ~conn with
            | Some p -> p.Fault.doomed_accept
            | None -> false
          in
          if doomed then begin
            (* The chaos plan kills this connection at the door — the
               client sees a clean close before any byte. *)
            (try
               Fault.fire Fault.Accept (Printf.sprintf "conn-%d" conn) 1
             with Fault.Injected _ -> ());
            Telemetry.note_session_dropped ();
            (try Unix.close fd with Unix.Unix_error _ -> ());
            go ()
          end
          else if live_sessions t >= t.config.max_sessions then begin
            refuse_session fd;
            go ()
          end
          else begin
            let thread = Thread.create (fun () -> run_session t conn fd) () in
            register t conn fd thread;
            go ()
          end)
  in
  go ()

let drain t =
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.config.socket_path with Unix.Unix_error _ -> ());
  (* Queued requests are shed immediately; only in-flight work is owed
     the drain budget. *)
  Admission.begin_drain t.admission;
  let deadline =
    Unix.gettimeofday () +. (float_of_int t.config.drain_ms /. 1000.)
  in
  while live_sessions t > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  (* Budget spent: force-close the stragglers' sockets. Their session
     loops surface [Sys_error]/EOF, count themselves dropped, and
     exit; the joins below then terminate. *)
  Mutex.lock t.reg_m;
  let stragglers = Hashtbl.fold (fun _ fd acc -> fd :: acc) t.live [] in
  let threads = t.threads in
  Mutex.unlock t.reg_m;
  List.iter
    (fun fd ->
       try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    stragglers;
  List.iter Thread.join threads

let run t =
  (* Signal handlers may only flip the flag; the polling accept loop
     does the actual draining on its own thread. *)
  let previous =
    List.map
      (fun sg ->
         try (sg, Some (Sys.signal sg (Sys.Signal_handle (fun _ -> begin_drain t))))
         with Invalid_argument _ | Sys_error _ -> (sg, None))
      [ Sys.sigterm; Sys.sigint ]
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (sg, prev) ->
           match prev with
           | Some b -> ( try Sys.set_signal sg b with _ -> ())
           | None -> ())
        previous)
    (fun () ->
       accept_loop t;
       drain t)
