(* Report export (paper Fig. 5, steps 5-7).

   The paper's proxy pairs analysis results with the original sources
   and commits them to a git repository "as it provides both version
   tracking and a convenient way to link result reports to source
   code". We write the same content as a directory of markdown
   reports; versioning is left to the user's own repository. *)

let sanitize name =
  String.map
    (fun c ->
       match c with
       | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
       | _ -> '-')
    name

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Export: %s exists and is not a directory" dir)

(* Write a markdown report assembled from titled sections; returns the
   path written. Code sections are fenced. *)
let write_report ~dir ~name ~(sections : (string * [ `Text of string | `Code of string ]) list) =
  ensure_dir dir;
  let path = Filename.concat dir (sanitize name ^ ".md") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
       Printf.fprintf oc "# JS-CERES report: %s\n\n" name;
       List.iter
         (fun (title, body) ->
            Printf.fprintf oc "## %s\n\n" title;
            match body with
            | `Text text ->
              output_string oc text;
              output_string oc "\n\n"
            | `Code text ->
              output_string oc "```\n";
              output_string oc text;
              if String.length text > 0 && text.[String.length text - 1] <> '\n'
              then output_char oc '\n';
              output_string oc "```\n\n")
         sections);
  path
