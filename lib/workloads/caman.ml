(* CamanJS — image manipulation library (Table 1, "Audio and Video").

   The user applies a filter chain to a photo. CamanJS's render loop
   walks the RGBA array; three kernels dominate, matching the paper's
   three inspected nests for this app (72/15/7 % of loop time):
   brightness+contrast over pixels, a convolution (blur) over pixels,
   and a per-channel levels pass that touches every component (4x the
   trips). All writes scatter to distinct slots — "easy" in Table 3 —
   and Canvas traffic stays outside the loops (getImageData /
   putImageData around the kernels). *)

let source = {|
var W = Math.floor(40 * SCALE) + 10;
var H = Math.floor(40 * SCALE) + 10;

var canvas = document.createElement("canvas");
canvas.width = W; canvas.height = H;
canvas.id = "caman-canvas";
document.body.appendChild(canvas);
var ctx = canvas.getContext("2d");

// paint a synthetic photo once
ctx.fillStyle = "#336699";
ctx.fillRect(0, 0, W, H);
ctx.fillStyle = "#cc8833";
ctx.fillRect(4, 4, Math.floor(W / 2), Math.floor(H / 2));

var renders = 0;

// nest 1 (hot): brightness + contrast. CamanJS-style: the render loop
// hands each pixel to the filter callback.
function processPixels(data, n, filter) {
  var i;
  for (i = 0; i < n; i++) {
    var o = i * 4;
    var px = filter(data[o], data[o + 1], data[o + 2]);
    data[o] = px.r;
    data[o + 1] = px.g;
    data[o + 2] = px.b;
  }
}
function brightnessContrast(data, n, brightness, contrast) {
  var clamp = function(v) { return v < 0 ? 0 : (v > 255 ? 255 : v); };
  processPixels(data, n, function(r, g, b) {
    return {
      r: clamp(r * contrast + brightness),
      g: clamp(g * contrast + brightness),
      b: clamp(b * contrast + brightness)
    };
  });
}

// nest 2: 3x3 box blur (reads the source copy, writes the target)
function boxBlur(src, dst, w, h) {
  var i;
  for (i = 0; i < w * h; i++) {
    var x = i % w;
    var y = Math.floor(i / w);
    if (x > 0 && x < w - 1 && y > 0 && y < h - 1) {
      var c;
      for (c = 0; c < 3; c++) {
        var o = i * 4 + c;
        dst[o] = (src[o - 4] + src[o] + src[o + 4]
                + src[o - w * 4] + src[o + w * 4]
                + src[o - w * 4 - 4] + src[o - w * 4 + 4]
                + src[o + w * 4 - 4] + src[o + w * 4 + 4]) / 9;
      }
    } else {
      dst[i * 4] = src[i * 4];
      dst[i * 4 + 1] = src[i * 4 + 1];
      dst[i * 4 + 2] = src[i * 4 + 2];
    }
  }
}

// nest 3: per-component levels clamp (4x trips of the pixel loops)
function levels(data, len, lo, hi) {
  var i;
  for (i = 0; i < len; i++) {
    var v = data[i];
    data[i] = v < lo ? lo : (v > hi ? hi : v);
  }
}

function applyFilters() {
  var img = ctx.getImageData(0, 0, W, H);
  var data = img.data;
  var n = W * H;
  brightnessContrast(data, n, 12, 1.08);
  var copy = data.slice(0, n * 4);
  boxBlur(copy, data, W, H);
  levels(data, n * 4, 8, 246);
  ctx.putImageData(img, 0, 0);
  renders++;
  console.log("caman: render", renders);
}

var button = document.createElement("button");
button.id = "apply-button";
document.body.appendChild(button);
button.addEventListener("click", function(ev) { applyFilters(); });
|}

let workload =
  Workload.make ~name:"CamanJS" ~url:"camanjs.com"
    ~category:"Audio and Video" ~description:"image manipulation library"
    ~source ~session_ms:40_000.
    ~interactions:(Workload.clicks ~target_id:"apply-button"
                     ~times:[ 2_000.; 11_000.; 20_000.; 29_000. ])
    ~dep_scale:0.4 ~hot_nest_count:3 ()
