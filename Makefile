# js-ceres — OCaml reproduction of "Are web applications ready for
# parallelism?" (PPoPP 2015)

.PHONY: all build test check chaos analyze analyze-smoke advise advise-smoke serve-smoke serve-stress-smoke par-exec-smoke bench bench-smoke examples reports clean

all: build

build:
	dune build @all

test:
	dune runtest

# Tier-1 gate: full build, the whole test suite, a 2-workload smoke
# run of the parallel analysis driver, and the deterministic chaos
# suite.
check:
	dune build @all
	dune runtest
	dune exec bin/jsceres.exe -- pipeline --jobs 2 --stats Ace MyScript
	$(MAKE) analyze-smoke
	$(MAKE) advise-smoke
	$(MAKE) serve-smoke
	$(MAKE) serve-stress-smoke
	$(MAKE) par-exec-smoke
	$(MAKE) bench-smoke
	$(MAKE) chaos

# Static analyzer sweep: run `jsceres analyze --format=json` over every
# workload (exit 0 = no sequential loops, 2 = some; both are fine here)
# and diff against the committed goldens in test/golden/analyze/. After
# an intentional analyzer change, regenerate with ANALYZE_REGEN=1.
ANALYZE_WORKLOADS = HAAR.js Tear-able_Cloth CamanJS fluidSim Harmony Ace \
                    MyScript Raytracing Normal_Mapping sigma.js \
                    processing.js D3.js

analyze: build
	@for w in $(ANALYZE_WORKLOADS); do \
	  name=$$(echo $$w | tr '_' ' '); \
	  out=_build/analyze-$$w.json; \
	  dune exec bin/jsceres.exe -- analyze "$$name" --format=json >$$out; \
	  rc=$$?; \
	  test $$rc -eq 0 -o $$rc -eq 2 || \
	    { echo "analyze $$name: exit $$rc"; exit 1; }; \
	  if [ -n "$(ANALYZE_REGEN)" ]; then \
	    cp $$out test/golden/analyze/$$w.json; \
	  else \
	    cmp -s $$out test/golden/analyze/$$w.json || \
	      { echo "analyze $$name: report differs from golden"; exit 1; }; \
	  fi; \
	done; echo "analyze sweep OK ($(words $(ANALYZE_WORKLOADS)) workloads)"

# Prover-power regression gate (in `make check`): the analyze sweep
# must keep at least ANALYZE_PROVEN_FLOOR statically proven loops
# (verdict parallel/reduction) across the 12 workloads — the PR-8
# count — so analyzer changes cannot silently lose proofs. Counted
# from the freshly generated reports, which `analyze` has already
# diffed (or regenerated) against the committed goldens.
ANALYZE_PROVEN_FLOOR = 22

analyze-smoke: analyze
	@proven=$$(grep -ho '"verdict": "parallel"\|"verdict": "reduction"' \
	             _build/analyze-*.json | wc -l); \
	if [ $$proven -lt $(ANALYZE_PROVEN_FLOOR) ]; then \
	  echo "analyze-smoke: $$proven statically proven loops, floor is \
	$(ANALYZE_PROVEN_FLOOR)"; exit 1; \
	fi; \
	echo "analyze-smoke OK ($$proven proven loops >= $(ANALYZE_PROVEN_FLOOR))"

# Advisor sweep: `jsceres advise --format=json` over every workload,
# diffed against the committed goldens in test/golden/advise/ (the
# reports are pure vclock arithmetic, so they are byte-deterministic).
# After an intentional model or analyzer change, regenerate with
# ADVISE_REGEN=1.
advise: build
	@for w in $(ANALYZE_WORKLOADS); do \
	  name=$$(echo $$w | tr '_' ' '); \
	  out=_build/advise-$$w.json; \
	  dune exec bin/jsceres.exe -- advise "$$name" --format=json >$$out || \
	    { echo "advise $$name: exit $$?"; exit 1; }; \
	  if [ -n "$(ADVISE_REGEN)" ]; then \
	    cp $$out test/golden/advise/$$w.json; \
	  else \
	    cmp -s $$out test/golden/advise/$$w.json || \
	      { echo "advise $$name: report differs from golden"; exit 1; }; \
	  fi; \
	done; echo "advise sweep OK ($(words $(ANALYZE_WORKLOADS)) workloads)"

# Advisor grading gate (in `make check`): beyond the golden diff of
# the full sweep, the two par-exec workloads must (a) produce the
# committed deterministic plan and (b) under --measure attach a
# measured speedup row to at least one nest par-exec really executed
# — so every executed nest carries predicted AND measured numbers.
ADVISE_SMOKE_WORKLOADS = HAAR.js fluidSim

advise-smoke: advise
	@for w in $(ADVISE_SMOKE_WORKLOADS); do \
	  out=_build/advise-$$w-measured.json; \
	  dune exec bin/jsceres.exe -- advise "$$w" --measure -j 2 \
	    --format=json >$$out 2>/dev/null || \
	    { echo "advise-smoke: measured advise of $$w failed"; exit 1; }; \
	  grep -q '"measured_nests"' $$out || \
	    { echo "advise-smoke: $$w measured report lacks measured section"; \
	      exit 1; }; \
	  n=$$(grep -o '"measured_nests": [0-9]*' $$out | head -1 | grep -o '[0-9]*'); \
	  test -n "$$n" -a "$$n" -gt 0 2>/dev/null || \
	    { echo "advise-smoke: $$w: no nest carries a measured speedup"; exit 1; }; \
	  grep -q '"predicted"' $$out || \
	    { echo "advise-smoke: $$w measured report lacks predictions"; exit 1; }; \
	  echo "advise-smoke: $$w OK (measured nests: $$n)"; \
	done; echo "advise smoke OK ($(ADVISE_SMOKE_WORKLOADS))"

# Service-mode smoke test: pipe a fixed 12-request JSONL session (two
# analyses, a repeated profile — once explicitly versioned v1, a bad
# pass, a rejected v2 request, an advise request, a cache-stats probe,
# a telemetry probe) through `jsceres serve` and byte-compare against
# the committed golden — the responses are deterministic, and the
# final cache-stats line pins the hit/miss counters, so the repeated
# request must have been served from the cache. The telemetry line's
# GC word counts move with every interpreter change, so they are
# normalised to 0 before the compare (the field names and the
# deterministic cache/pool parts are still pinned byte-for-byte).
# After an intentional protocol change, regenerate with SERVE_REGEN=1.
serve-smoke: build
	@out=_build/serve-smoke.out; \
	dune exec bin/jsceres.exe -- serve \
	  < test/golden/serve/smoke.jsonl \
	  | sed -E 's/("minor_words"|"promoted_words"|"major_words"|"minor_collections"|"major_collections"):[0-9]+/\1:0/g' \
	  > $$out || \
	  { echo "serve-smoke: serve exited nonzero"; exit 1; }; \
	if [ -n "$(SERVE_REGEN)" ]; then \
	  cp $$out test/golden/serve/smoke.expected; \
	else \
	  cmp -s $$out test/golden/serve/smoke.expected || \
	    { echo "serve-smoke: output differs from golden"; \
	      diff test/golden/serve/smoke.expected $$out | head -5; exit 1; }; \
	fi; \
	hits=$$(grep -o '"hits":[0-9]*' $$out | head -1 | cut -d: -f2); \
	test "$$hits" -gt 0 || \
	  { echo "serve-smoke: expected cache hits > 0, got $$hits"; exit 1; }; \
	echo "serve smoke OK (cache hits: $$hits)"

# Server stress smoke: start the socket server with a deliberately
# tiny admission gate, fire a loadgen burst that exceeds it, and
# require shed > 0 (every refusal is a structured overloaded response
# with retry_after_ms), zero server-inflicted connection drops of
# well-behaved exchanges (loadgen exits 1 otherwise), and a clean
# graceful-drain exit 0 on SIGTERM with the socket file unlinked.
# A second round repeats the burst under a chaos seed with transport
# faults injected server-side (doomed accepts, torn responses,
# mid-response disconnects) AND misbehaving clients (torn request
# lines, disconnect-before-read, slow-loris): some exchanges are
# deliberately destroyed, so the zero-drop bar doesn't apply, but the
# well-behaved requests must still complete (ok > 0) and the server
# must still drain cleanly to exit 0 — chaos never crashes it.
# The built binary is invoked directly: the server runs in the
# background while loadgen runs, and two concurrent `dune exec`
# processes would deadlock on dune's build lock.
JSCERES_BIN = _build/default/bin/jsceres.exe

serve-stress-smoke: build
	@sock=_build/serve-stress.sock; out=_build/serve-stress.json; \
	rm -f $$sock; \
	$(JSCERES_BIN) serve --socket $$sock -j 2 --max-inflight 1 \
	  --queue-capacity 0 --deadline-ms 60000 & pid=$$!; \
	i=0; while [ ! -S $$sock ] && [ $$i -lt 100 ]; do sleep 0.05; i=$$((i+1)); done; \
	test -S $$sock || { echo "serve-stress-smoke: server never bound"; kill $$pid 2>/dev/null; exit 1; }; \
	$(JSCERES_BIN) loadgen --socket $$sock -c 8 -n 40 > $$out || \
	  { echo "serve-stress-smoke: loadgen reported dropped connections"; \
	    cat $$out; kill $$pid 2>/dev/null; exit 1; }; \
	shed=$$(grep -o '"shed":[0-9]*' $$out | cut -d: -f2); \
	dropped=$$(grep -o '"dropped_connections":[0-9]*' $$out | cut -d: -f2); \
	test "$$shed" -gt 0 || \
	  { echo "serve-stress-smoke: burst above --max-inflight shed nothing"; \
	    cat $$out; kill $$pid 2>/dev/null; exit 1; }; \
	test "$$dropped" -eq 0 || \
	  { echo "serve-stress-smoke: $$dropped uncleanly dropped connection(s)"; \
	    kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid; rc=$$?; \
	test $$rc -eq 0 || { echo "serve-stress-smoke: drain exited $$rc"; exit 1; }; \
	test ! -S $$sock || { echo "serve-stress-smoke: socket not unlinked"; exit 1; }; \
	echo "serve-stress smoke OK (shed: $$shed, dropped: 0, drain exit: 0)"; \
	sock=_build/serve-stress-chaos.sock; out=_build/serve-stress-chaos.json; \
	rm -f $$sock; \
	$(JSCERES_BIN) serve --socket $$sock -j 2 --max-inflight 2 \
	  --queue-capacity 2 --deadline-ms 60000 --chaos-seed 7 \
	  --chaos-transport & pid=$$!; \
	i=0; while [ ! -S $$sock ] && [ $$i -lt 100 ]; do sleep 0.05; i=$$((i+1)); done; \
	test -S $$sock || { echo "serve-stress-smoke: chaos server never bound"; kill $$pid 2>/dev/null; exit 1; }; \
	$(JSCERES_BIN) loadgen --socket $$sock -c 4 -n 25 -s 7 --chaos-clients \
	  > $$out || true; \
	ok=$$(grep -o '"ok":[0-9]*' $$out | head -1 | cut -d: -f2); \
	test -n "$$ok" -a "$$ok" -gt 0 2>/dev/null || \
	  { echo "serve-stress-smoke: no request survived the chaos round"; \
	    cat $$out; kill $$pid 2>/dev/null; exit 1; }; \
	kill -TERM $$pid; wait $$pid; rc=$$?; \
	test $$rc -eq 0 || { echo "serve-stress-smoke: chaos drain exited $$rc"; exit 1; }; \
	echo "serve-stress smoke OK under chaos (ok: $$ok, drain exit: 0)"

# Parallel-execution smoke test: the two workloads whose proven nests
# are big enough to fork must produce byte-identical stdout with
# `--par-exec -j 2`, and the stderr telemetry must show nests really
# executing through the pool (nests > 0, pool tasks_executed > 0) —
# guarding against the silent regression where every instance falls
# back to the sequential path and the byte-compare passes vacuously.
PAR_EXEC_WORKLOADS = CamanJS HAAR.js

par-exec-smoke: build
	@for w in $(PAR_EXEC_WORKLOADS); do \
	  seq=_build/parexec-$$w-seq.out; par=_build/parexec-$$w-par.out; \
	  err=_build/parexec-$$w-par.err; \
	  dune exec bin/jsceres.exe -- run "$$w" >$$seq 2>/dev/null || \
	    { echo "par-exec-smoke: sequential run of $$w failed"; exit 1; }; \
	  dune exec bin/jsceres.exe -- run "$$w" --par-exec -j 2 --par-stats \
	    >$$par 2>$$err || \
	    { echo "par-exec-smoke: parallel run of $$w failed"; exit 1; }; \
	  cmp -s $$seq $$par || \
	    { echo "par-exec-smoke: $$w parallel output differs from sequential"; \
	      diff $$seq $$par | head -5; exit 1; }; \
	  nests=$$(grep -o '"nests":[0-9]*' $$err | head -1 | cut -d: -f2); \
	  tasks=$$(grep -o '"tasks_executed":[0-9]*' $$err | head -1 | cut -d: -f2); \
	  test -n "$$nests" -a "$$nests" -gt 0 2>/dev/null || \
	    { echo "par-exec-smoke: $$w ran no nests in parallel"; exit 1; }; \
	  test -n "$$tasks" -a "$$tasks" -gt 0 2>/dev/null || \
	    { echo "par-exec-smoke: $$w pool executed no tasks"; exit 1; }; \
	  echo "par-exec-smoke: $$w OK (nests: $$nests, pool tasks: $$tasks)"; \
	done; echo "par-exec smoke OK ($(PAR_EXEC_WORKLOADS))"

# Deterministic fault-injection suite. Each fixed seed must (a) kill at
# least one workload — the run exits 1 and prints a failure summary
# while the survivors still print their rows — and (b) produce
# byte-identical stdout when repeated: the injection plan is a pure
# function of the seed, and every printed failure field is virtual-time
# based, so any nondeterminism here is a real bug.
CHAOS_SEEDS = 1 3 4
CHAOS_WORKLOADS = HAAR.js Ace MyScript fluidSim

chaos: build
	@for s in $(CHAOS_SEEDS); do \
	  echo "== chaos seed $$s =="; \
	  a=_build/chaos-$$s-a.out; b=_build/chaos-$$s-b.out; \
	  rc1=0; dune exec bin/jsceres.exe -- pipeline --keep-going --jobs 2 \
	    --chaos-seed $$s $(CHAOS_WORKLOADS) >$$a 2>/dev/null || rc1=$$?; \
	  rc2=0; dune exec bin/jsceres.exe -- pipeline --keep-going --jobs 2 \
	    --chaos-seed $$s $(CHAOS_WORKLOADS) >$$b 2>/dev/null || rc2=$$?; \
	  test $$rc1 -eq 1 || { echo "seed $$s: expected exit 1, got $$rc1"; exit 1; }; \
	  test $$rc2 -eq 1 || { echo "seed $$s: expected exit 1 on repeat, got $$rc2"; exit 1; }; \
	  cmp -s $$a $$b || { echo "seed $$s: repeated run not byte-identical"; exit 1; }; \
	  grep -q "FAILED" $$a || { echo "seed $$s: no failure row printed"; exit 1; }; \
	  grep -q "workload(s) failed" $$a || { echo "seed $$s: no failure summary"; exit 1; }; \
	  grep "FAILED" $$a; \
	done; echo "chaos suite OK (seeds: $(CHAOS_SEEDS))"

# Regenerate every table and figure of the paper's evaluation.
bench:
	dune exec bench/main.exe

# Perf regression gate: re-measure the two heaviest workloads cold and
# compare their total pass wall time against the committed
# BENCH_baseline.json. A workload only fails the gate when it is both
# >25% and >25 ms over its baseline, so timer noise cannot trip it.
# After an intentional perf change, refresh the whole baseline with
# BENCH_REGEN=1 (re-measures all 12 workloads).
BENCH_SMOKE_WORKLOADS = HAAR.js fluidSim

bench-smoke: build
	@if [ -n "$(BENCH_REGEN)" ]; then \
	  dune exec bench/main.exe -- --json > BENCH_baseline.json; \
	  echo "bench baseline regenerated"; \
	else \
	  dune exec bench/main.exe -- --json \
	    --check-against BENCH_baseline.json $(BENCH_SMOKE_WORKLOADS) \
	    > _build/bench-smoke.json; \
	  echo "bench smoke OK"; \
	fi

examples:
	dune exec examples/quickstart.exe
	dune exec examples/nbody_analysis.exe
	dune exec examples/image_pipeline.exe
	dune exec examples/survey_report.exe
	dune exec examples/speculative_cloth.exe

# Per-application markdown reports (paper Fig. 5 steps 5-7).
reports:
	for w in HAAR.js "Tear-able Cloth" CamanJS fluidSim Harmony Ace \
	         MyScript Raytracing "Normal Mapping" sigma.js processing.js \
	         D3.js; do \
	  dune exec bin/jsceres.exe -- report "$$w" -o reports; \
	done

clean:
	dune clean
