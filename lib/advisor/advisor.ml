(* Causal what-if advisor over the vclock profile.

   TASKPROF's observation carries over directly: because the abstract
   machine's clock is deterministic, a single loop-profile run yields
   exact per-nest busy fractions, and Amdahl's law turns each fraction
   into the whole-program speedup parallelizing that nest alone would
   buy at N cores. The static analyzer supplies the other half of the
   answer — whether the nest may be parallelized today (proven), after
   a mechanical rewrite (the Advice hints), or not as written (the
   why-not fact chain). [measure] closes the loop against Par_exec's
   measured speedups on the nests it already executes. *)

module PE = Js_parallel.Par_exec

type predicted = { cores : int; speedup : float }

type measured_row = {
  m_id : int;
  m_label : string;
  m_fraction : float;
  m_jobs : int;
  m_seq_ms : float;
  m_par_ms : float;
  m_nest_speedup : float;
  m_program_speedup : float;
  m_predicted : float;
  m_karp_flatt : float;
  m_within_band : bool;
}

type nest = {
  rank : int;
  id : int;
  label : string;
  in_function : string option;
  verdict : string;
  proven : bool;
  fraction : float;
  pct_busy : float;
  instances : int;
  trips_mean : float;
  bound : float;
  predicted : predicted list;
  blockers : Analysis.Verdict.fact list;
  hints : string list;
}

type report = {
  workload : string;
  cores : int list;
  busy_ms : float;
  loop_ms : float;
  nests : nest list;
  mutable measured : measured_row list;
  fractions : (int * float) list;
}

let default_cores = [ 2; 4; 8; 16 ]

let sanitize_cores = function
  | None -> default_cores
  | Some cs -> (
      match List.sort_uniq compare (List.filter (fun c -> c >= 1) cs) with
      | [] -> default_cores
      | cs -> cs)

(* The tolerance band the advisor grades itself against (documented in
   DESIGN.md §14): a measured program-equivalent speedup within 25% of
   the prediction is on-model, anything further off is flagged. *)
let within_band ~predicted ~measured =
  Float.abs (predicted -. measured) <= 0.25 *. predicted

(* ------------------------------------------------------------------ *)

(* Whole-program speedup when the region covering [fraction] of busy
   time runs [s]x faster — Amdahl generalized from a core count to an
   arbitrary region speedup. *)
let program_speedup ~fraction ~region_speedup:s =
  if s <= 0. then 0. else 1. /. (1. -. fraction +. (fraction /. s))

(* Hints: the dynamic Advice transformations (ranked, blockers first)
   plus any statically-detected privatizable temporaries the dynamic
   run did not already name. [Already_parallel] is a non-hint — the
   verdict column says it better. *)
let hints_for rt ~infos ~root ~notes =
  let nest_ids = Jsir.Loops.descendants infos root in
  let dom_count =
    List.fold_left
      (fun acc id -> acc + Ceres.Runtime.dom_accesses_in rt id)
      0 nest_ids
  in
  let advice =
    List.filter
      (fun a -> a <> Ceres.Advice.Already_parallel)
      (Ceres.Advice.for_nest rt ~root ~dom_accesses:dom_count)
  in
  let dynamic = List.map Ceres.Advice.recommendation_to_string advice in
  let static_privatizable =
    List.filter_map
      (fun note ->
         let prefix = "privatizable:" in
         if String.length note > String.length prefix
         && String.sub note 0 (String.length prefix) = prefix
         then
           let name =
             String.sub note (String.length prefix)
               (String.length note - String.length prefix)
           in
           let already =
             List.exists
               (function Ceres.Advice.Privatize n -> n = name | _ -> false)
               advice
           in
           if already then None
           else
             Some
               (Printf.sprintf
                  "privatize variable '%s' (statically detected \
                   loop-local temporary)"
                  name)
         else None)
      notes
  in
  dynamic @ static_privatizable

let analyze ?cores (w : Workloads.Workload.t) : report =
  let cores = sanitize_cores cores in
  let ctx, lp = Workloads.Harness.run_loop_profile w in
  let _ctx_dep, rt = Workloads.Harness.run_dependence w in
  let static_report = Analysis.Driver.analyze ctx.program in
  let clock = ctx.st.Interp.Value.clock in
  let busy_ms =
    Ceres_util.Vclock.to_ms clock (Ceres_util.Vclock.busy clock)
  in
  let loop_ms = Ceres.Loop_profile.total_root_time_ms lp ctx.infos in
  let fraction_of_time total_ms =
    if busy_ms <= 0. then 0.
    else Float.max 0. (Float.min 1. (total_ms /. busy_ms))
  in
  let fractions =
    Array.to_list
      (Array.map
         (fun (info : Jsir.Loops.info) ->
            let s = Ceres.Loop_profile.stats lp info.id in
            (info.id, fraction_of_time (Ceres_util.Welford.total s.time)))
         ctx.infos)
  in
  let ranked =
    List.sort
      (fun ((fa : float), (ia : int)) (fb, ib) ->
         match compare fb fa with 0 -> compare ia ib | c -> c)
      (List.map
         (fun (s : Ceres.Loop_profile.loop_stats) ->
            (fraction_of_time (Ceres_util.Welford.total s.time), s.id))
         (Ceres.Loop_profile.hottest_roots lp ctx.infos))
  in
  let nests =
    List.mapi
      (fun i (fraction, id) ->
         let s = Ceres.Loop_profile.stats lp id in
         let info = Jsir.Loops.find ctx.infos id in
         let verdict_t = Analysis.Driver.verdict_of static_report id in
         let verdict, proven, blockers =
           match verdict_t with
           | Some v ->
             ( Workloads.Harness.static_label v,
               Analysis.Verdict.is_proven v,
               Analysis.Verdict.facts v )
           | None -> ("-", false, [])
         in
         let notes =
           match
             List.find_opt
               (fun (r : Analysis.Driver.row) -> r.info.id = id)
               static_report.rows
           with
           | Some r -> r.notes
           | None -> []
         in
         { rank = i + 1;
           id;
           label = Jsir.Loops.label info;
           in_function = info.in_function;
           verdict;
           proven;
           fraction;
           pct_busy = 100. *. fraction;
           instances = Ceres_util.Welford.count s.time;
           trips_mean = Ceres_util.Welford.mean s.trips;
           bound = Js_parallel.Amdahl.asymptote ~parallel_fraction:fraction;
           predicted =
             List.map
               (fun c ->
                  { cores = c;
                    speedup =
                      Js_parallel.Amdahl.speedup ~parallel_fraction:fraction
                        ~workers:c })
               cores;
           blockers;
           hints = hints_for rt ~infos:ctx.infos ~root:id ~notes })
      ranked
  in
  { workload = w.name;
    cores;
    busy_ms;
    loop_ms;
    nests;
    measured = [];
    fractions }

(* ------------------------------------------------------------------ *)
(* Ground truth: the bench parexec plumbing — one Measure-mode run
   (per-nest sequential baselines) and one Parallel run over a fresh
   pool, joined by loop id. *)

let measure ?(jobs = 2) (r : report) (w : Workloads.Workload.t) =
  let m = PE.create ~mode:PE.Measure ~jobs:1 () in
  ignore (Workloads.Harness.run_plain ~par:m w);
  let rows =
    Js_parallel.Pool.with_pool ~domains:jobs (fun pool ->
        let p = PE.create ~mode:(PE.Parallel pool) ~jobs () in
        ignore (Workloads.Harness.run_plain ~par:p w);
        let seq_rows = PE.nest_rows m in
        List.filter_map
          (fun (id, label, (ps : PE.nest_stats)) ->
             if ps.instances <= 0 then None
             else begin
               let seq_ms =
                 match
                   List.find_opt (fun (i, _, _) -> i = id) seq_rows
                 with
                 | Some (_, _, (ss : PE.nest_stats)) -> ss.seq_ms
                 | None -> 0.
               in
               let nest_speedup =
                 if ps.par_ms > 0. && seq_ms > 0. then seq_ms /. ps.par_ms
                 else 0.
               in
               let fraction =
                 match List.assoc_opt id r.fractions with
                 | Some f -> f
                 | None -> 0.
               in
               let predicted =
                 Js_parallel.Amdahl.speedup ~parallel_fraction:fraction
                   ~workers:jobs
               in
               let program =
                 program_speedup ~fraction ~region_speedup:nest_speedup
               in
               Some
                 { m_id = id;
                   m_label = label;
                   m_fraction = fraction;
                   m_jobs = jobs;
                   m_seq_ms = seq_ms;
                   m_par_ms = ps.par_ms;
                   m_nest_speedup = nest_speedup;
                   m_program_speedup = program;
                   m_predicted = predicted;
                   m_karp_flatt =
                     Js_parallel.Amdahl.karp_flatt
                       ~measured_speedup:nest_speedup ~workers:jobs;
                   m_within_band =
                     within_band ~predicted ~measured:program }
             end)
          (PE.nest_rows p))
  in
  r.measured <- rows;
  List.length rows

(* ------------------------------------------------------------------ *)
(* Renderings. All virtual-time numbers print through [Fixed] so the
   default report is byte-deterministic; measured (wall-clock) fields
   appear only after [measure] and never in golden-compared output. *)

let json_of_fact (f : Analysis.Verdict.fact) : Ceres_util.Json.t =
  Obj
    [ ("pass", Str f.pass); ("why", Str f.why); ("line", Int f.line) ]

let json_of_nest (n : nest) : Ceres_util.Json.t =
  let open Ceres_util.Json in
  Obj
    [ ("rank", Int n.rank);
      ("id", Int n.id);
      ("label", Str n.label);
      ( "function",
        match n.in_function with Some f -> Str f | None -> Null );
      ("verdict", Str n.verdict);
      ("proven", Bool n.proven);
      ("fraction", Fixed (4, n.fraction));
      ("pct_busy", Fixed (1, n.pct_busy));
      ("instances", Int n.instances);
      ("trips_mean", Fixed (1, n.trips_mean));
      ("bound", Fixed (2, n.bound));
      ( "predicted",
        List
          (List.map
             (fun (p : predicted) ->
                Obj
                  [ ("cores", Int p.cores);
                    ("speedup", Fixed (2, p.speedup)) ])
             n.predicted) );
      ("blockers", List (List.map json_of_fact n.blockers));
      ("hints", List (List.map (fun h -> Str h) n.hints)) ]

let json_of_measured (m : measured_row) : Ceres_util.Json.t =
  let open Ceres_util.Json in
  Obj
    [ ("id", Int m.m_id);
      ("label", Str m.m_label);
      ("fraction", Fixed (4, m.m_fraction));
      ("jobs", Int m.m_jobs);
      ("seq_ms", Fixed (1, m.m_seq_ms));
      ("par_ms", Fixed (1, m.m_par_ms));
      ("nest_speedup", Fixed (2, m.m_nest_speedup));
      ("program_speedup", Fixed (2, m.m_program_speedup));
      ("predicted", Fixed (2, m.m_predicted));
      ("karp_flatt", Fixed (2, m.m_karp_flatt));
      ("within_band", Bool m.m_within_band) ]

let json_of_report (r : report) : Ceres_util.Json.t =
  let open Ceres_util.Json in
  Obj
    ([ ("workload", Str r.workload);
       ("cores", List (List.map (fun c -> Int c) r.cores));
       ("busy_ms", Fixed (3, r.busy_ms));
       ("loop_ms", Fixed (3, r.loop_ms));
       ("plan", List (List.map json_of_nest r.nests)) ]
     @
     match r.measured with
     | [] -> []
     | ms ->
       [ ( "measured",
           Obj
             [ ("measured_nests", Int (List.length ms));
               ("nests", List (List.map json_of_measured ms)) ] ) ])

let to_json r = Ceres_util.Json.to_string_pretty (json_of_report r)

(* The headline core count of a plan line ("... at 4 cores"): 4 when
   modeled, else the largest modeled count. *)
let headline_cores r =
  if List.mem 4 r.cores then 4
  else match List.rev r.cores with c :: _ -> c | [] -> 4

let to_text (r : report) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "advisor plan for %s: busy %.2f s, %.0f%% of it in root loop nests\n"
       r.workload (r.busy_ms /. 1000.)
       (if r.busy_ms <= 0. then 0. else 100. *. r.loop_ms /. r.busy_ms));
  let hc = headline_cores r in
  List.iter
    (fun (n : nest) ->
       Buffer.add_string buf
         (Printf.sprintf "%3d. %s%s — %s%s, %.1f%% of busy time\n" n.rank
            n.label
            (match n.in_function with
             | Some f -> " in " ^ f
             | None -> "")
            n.verdict
            (if n.proven then " (proven)" else "")
            n.pct_busy);
       let at_hc =
         match List.find_opt (fun (p : predicted) -> p.cores = hc) n.predicted with
         | Some p -> p.speedup
         | None -> n.bound
       in
       Buffer.add_string buf
         (Printf.sprintf "     predicted whole-program speedup: %s (bound %.2fx)\n"
            (String.concat ", "
               (List.map
                  (fun (p : predicted) ->
                     Printf.sprintf "%.2fx @%d" p.speedup p.cores)
                  n.predicted))
            n.bound);
       Buffer.add_string buf
         (if n.proven then
            Printf.sprintf
              "     parallelize this nest -> predicted whole-program %.2fx \
               at %d cores\n"
              at_hc hc
          else
            Printf.sprintf
              "     if unblocked -> predicted whole-program %.2fx at %d \
               cores\n"
              at_hc hc);
       List.iter
         (fun (f : Analysis.Verdict.fact) ->
            Buffer.add_string buf
              (Printf.sprintf "     blocked by: %s [%s, line %d]\n" f.why
                 f.pass f.line))
         n.blockers;
       List.iter
         (fun h ->
            Buffer.add_string buf (Printf.sprintf "     hint: %s\n" h))
         n.hints)
    r.nests;
  (match r.measured with
   | [] -> ()
   | ms ->
     Buffer.add_string buf
       (Printf.sprintf "measured (par-exec, %d nest(s)):\n" (List.length ms));
     List.iter
       (fun (m : measured_row) ->
          Buffer.add_string buf
            (Printf.sprintf
               "  %s: seq %.1f ms -> par %.1f ms = %.2fx nest; program \
                %.2fx vs predicted %.2fx @%d (karp-flatt %.2f) [%s]\n"
               m.m_label m.m_seq_ms m.m_par_ms m.m_nest_speedup
               m.m_program_speedup m.m_predicted m.m_jobs m.m_karp_flatt
               (if m.m_within_band then "ok" else "off-model")))
       ms);
  Buffer.contents buf
