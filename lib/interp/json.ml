(* JSON builtin: stringify and parse.

   The survey-era web apps the paper studies lean on JSON for
   cross-script communication (the Sec. 2.4 global-variable answers
   mention handing data "from the server to the client on page load");
   the workloads and tests use it for checksumming structures. The
   implementation follows ECMAScript semantics for the common cases:
   [undefined] and functions are dropped from objects and become [null]
   in arrays, cyclic structures throw a TypeError. *)

open Value

exception Cycle

let rec stringify_value st ~seen (v : value) : string option =
  match v with
  | Undefined -> None
  | Null -> Some "null"
  | Bool b -> Some (if b then "true" else "false")
  | Num f ->
    if Float.is_nan f || Float.abs f = Float.infinity then Some "null"
    else Some (Jsir.Printer.number_to_string f)
  | Str s -> Some (Jsir.Printer.string_to_source s)
  | Obj o when o.call <> None -> None
  | Obj o ->
    if List.memq o.oid seen then raise Cycle;
    let seen = o.oid :: seen in
    (match o.arr with
     | Some a ->
       let parts =
         List.init a.len (fun i ->
             match stringify_value st ~seen a.elems.(i) with
             | Some s -> s
             | None -> "null")
       in
       Some ("[" ^ String.concat "," parts ^ "]")
     | None ->
       let parts =
         own_keys o
         |> List.filter_map (fun key ->
             match stringify_value st ~seen (get_prop_obj o key) with
             | Some s -> Some (Jsir.Printer.string_to_source key ^ ":" ^ s)
             | None -> None)
       in
       Some ("{" ^ String.concat "," parts ^ "}"))

(* ------------------------------------------------------------------ *)

type parser_state = { text : string; mutable pos : int }

let parse_error st msg =
  throw_error st "SyntaxError" ("JSON.parse: " ^ msg)

let peek p = if p.pos < String.length p.text then p.text.[p.pos] else '\000'

let skip_ws p =
  while
    p.pos < String.length p.text
    && (match p.text.[p.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    p.pos <- p.pos + 1
  done

let expect_char st p c =
  if peek p = c then p.pos <- p.pos + 1
  else parse_error st (Printf.sprintf "expected %c at offset %d" c p.pos)

let parse_string_body st p =
  expect_char st p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | '\000' -> parse_error st "unterminated string"
    | '"' -> p.pos <- p.pos + 1
    | '\\' ->
      p.pos <- p.pos + 1;
      let c = peek p in
      p.pos <- p.pos + 1;
      (match c with
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'r' -> Buffer.add_char buf '\r'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | '/' -> Buffer.add_char buf '/'
       | '\\' -> Buffer.add_char buf '\\'
       | '"' -> Buffer.add_char buf '"'
       | 'u' ->
         if p.pos + 4 > String.length p.text then
           parse_error st "truncated \\u escape";
         let hex = String.sub p.text p.pos 4 in
         p.pos <- p.pos + 4;
         (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
          | Some code ->
            (* Non-ASCII code points: emit UTF-8. *)
            if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | None -> parse_error st "bad \\u escape");
       | _ -> parse_error st "bad escape");
      go ()
    | c ->
      Buffer.add_char buf c;
      p.pos <- p.pos + 1;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st p =
  let start = p.pos in
  if peek p = '-' then p.pos <- p.pos + 1;
  while (match peek p with '0' .. '9' -> true | _ -> false) do
    p.pos <- p.pos + 1
  done;
  if peek p = '.' then begin
    p.pos <- p.pos + 1;
    while (match peek p with '0' .. '9' -> true | _ -> false) do
      p.pos <- p.pos + 1
    done
  end;
  (match peek p with
   | 'e' | 'E' ->
     p.pos <- p.pos + 1;
     (match peek p with '+' | '-' -> p.pos <- p.pos + 1 | _ -> ());
     while (match peek p with '0' .. '9' -> true | _ -> false) do
       p.pos <- p.pos + 1
     done
   | _ -> ());
  match float_of_string_opt (String.sub p.text start (p.pos - start)) with
  | Some f -> f
  | None -> parse_error st "malformed number"

let rec parse_value st p : value =
  skip_ws p;
  match peek p with
  | '"' -> Str (parse_string_body st p)
  | '{' ->
    p.pos <- p.pos + 1;
    let o = make_obj st in
    skip_ws p;
    if peek p = '}' then p.pos <- p.pos + 1
    else begin
      let rec members () =
        skip_ws p;
        let key = parse_string_body st p in
        skip_ws p;
        expect_char st p ':';
        let v = parse_value st p in
        raw_set_prop o key v;
        skip_ws p;
        match peek p with
        | ',' ->
          p.pos <- p.pos + 1;
          members ()
        | '}' -> p.pos <- p.pos + 1
        | _ -> parse_error st "expected , or } in object"
      in
      members ()
    end;
    Obj o
  | '[' ->
    p.pos <- p.pos + 1;
    skip_ws p;
    if peek p = ']' then begin
      p.pos <- p.pos + 1;
      Obj (make_array st [||])
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = parse_value st p in
        items := v :: !items;
        skip_ws p;
        match peek p with
        | ',' ->
          p.pos <- p.pos + 1;
          elements ()
        | ']' -> p.pos <- p.pos + 1
        | _ -> parse_error st "expected , or ] in array"
      in
      elements ();
      Obj (make_array st (Array.of_list (List.rev !items)))
    end
  | 't' ->
    if p.pos + 4 <= String.length p.text && String.sub p.text p.pos 4 = "true"
    then begin
      p.pos <- p.pos + 4;
      Bool true
    end
    else parse_error st "bad literal"
  | 'f' ->
    if p.pos + 5 <= String.length p.text && String.sub p.text p.pos 5 = "false"
    then begin
      p.pos <- p.pos + 5;
      Bool false
    end
    else parse_error st "bad literal"
  | 'n' ->
    if p.pos + 4 <= String.length p.text && String.sub p.text p.pos 4 = "null"
    then begin
      p.pos <- p.pos + 4;
      Null
    end
    else parse_error st "bad literal"
  | '-' | '0' .. '9' -> Num (parse_number st p)
  | _ -> parse_error st (Printf.sprintf "unexpected character at %d" p.pos)

let install st =
  let json = make_obj st in
  raw_set_prop json "stringify"
    (Obj
       (make_host_fn st "stringify" (fun st _ args ->
            let v = match args with [] -> Undefined | v :: _ -> v in
            match stringify_value st ~seen:[] v with
            | Some s -> Str s
            | None -> Undefined
            | exception Cycle ->
              type_error st "Converting circular structure to JSON")));
  raw_set_prop json "parse"
    (Obj
       (make_host_fn st "parse" (fun st _ args ->
            let text = match args with v :: _ -> to_string st v | [] -> "" in
            let p = { text; pos = 0 } in
            let v = parse_value st p in
            skip_ws p;
            if p.pos <> String.length text then
              parse_error st "trailing characters";
            v)));
  raw_set_prop st.global_obj "JSON" (Obj json)
