(** The long-running JSONL protocol: one request per line on input,
    one deterministic JSON response per line on output.

    Protocol, one JSON document per line:
    - an object with ["pass"]/["workload"] (see {!Request.of_json})
      → one response line;
    - an array of such objects → batched through the service's
      {!Batcher} (dedup + pool fan-out), one JSON array line back,
      responses in request order;
    - [{"op": "cache-stats"}] → the result cache's deterministic
      counters ([hits]/[misses]/[evictions]/[entries]);
    - [{"op": "cache-clear"}] → drop every cached result and zero the
      cache counters, answering with the post-clear [cache-stats]
      line (all zeros);
    - [{"op": "telemetry"}] → a health snapshot: the pool's
      scheduling telemetry under ["pool"] ([null] without a pool),
      the result cache's counters under ["cache"], and the process
      GC totals (minor/promoted/major words, collection counts)
      under ["gc"];
    - [{"op": "ping"}] → [{"ok": true}];
    - anything else (bad JSON, unknown pass, unknown op) → one
      [{"error": {...}}] line. The loop never crashes on input.

    Blank lines are ignored. EOF ends the loop. *)

type handler = {
  exec : Request.t -> Response.t;
  exec_batch : Request.t list -> Response.t list;
  cache_stats : unit -> Cache.stats;
  cache_clear : unit -> unit;
  telemetry : unit -> Ceres_util.Json.t option;
}

val handle_line : handler -> string -> string option
(** One protocol step: [None] for blank input, otherwise the response
    line (no trailing newline). Never raises. *)

val serve : handler -> in_channel -> out_channel -> unit
(** Run the loop until EOF, flushing after every response line. *)
