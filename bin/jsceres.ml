(* jsceres — command-line front end for the JS-CERES reproduction.

   Every analysis subcommand is a thin adapter over the service core
   (lib/service): it builds a [Service.Request.t], hands it to
   [Service.run] (or [run_batch]), and renders the [Service.Response.t]
   — the same core that backs `jsceres serve` and bench/main, so all
   surfaces produce identical results. Subcommand docs, flags and exit
   codes live in the tables below and are rendered into `--help`; do
   not duplicate them elsewhere. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* The one subcommand table: name -> one-line doc. `jsceres --help`
   and every sub-page are generated from it, so help cannot drift from
   the command set. *)

let subcommand_docs =
  [ ("list", "List the bundled case-study workloads.");
    ("run", "Run a workload without instrumentation.");
    ("profile", "Lightweight profiling (Sec 3.1): session/active/in-loop time.");
    ("loops", "Loop profiling (Sec 3.2): instances, times, trip counts.");
    ( "deps",
      "Dynamic dependence analysis (Sec 3.3): problematic memory accesses \
       observed while the workload runs." );
    ( "analyze",
      "Static loop-parallelizability analysis: scope resolution, effect \
       summaries, loop-carried dependence proofs. Exits 2 when any \
       analyzed loop is sequential." );
    ( "crossval",
      "Cross-validate the static verdicts against the dynamic dependence \
       run, one soundness line per loop." );
    ( "advise",
      "Causal what-if parallelism advisor: rank the hot loop nests into \
       an optimization plan with predicted whole-program speedups at N \
       cores (Amdahl over the deterministic profile), the static \
       blockers, and transformation hints; --measure grades the \
       predictions against real parallel execution." );
    ( "inspect",
      "Full Table 3 pipeline for one workload: profile, analyze, classify." );
    ( "pipeline",
      "Table 2 + Table 3 pipeline for many workloads, batched through the \
       service core — optionally in parallel (--jobs N) and under \
       per-workload supervision flags (--chaos-seed, --watchdog-ms)." );
    ( "serve",
      "Long-running service mode: one JSON request per line, one \
       deterministic JSON response per line, with result caching and \
       request batching. Default transport is stdin/stdout (EOF or \
       {\"op\":\"shutdown\"} ends the loop); --socket PATH serves many \
       concurrent clients over a Unix-domain socket with admission \
       control, per-request deadlines, load shedding and graceful \
       drain (SIGTERM or {\"op\":\"shutdown\"})." );
    ( "loadgen",
      "Replay a deterministic mixed-pass request stream against a \
       running --socket server from N concurrent clients; report \
       throughput and p50/p95/p99 latency as JSON." );
    ( "report",
      "Run the full staged analysis and write a markdown report (the \
       paper's Fig. 5 steps 5-7)." );
    ("survey", "Regenerate the developer-survey analysis (paper Sec. 2).");
    ("file", "Run or analyze an arbitrary MiniJS script.") ]

(* The one exit-code convention (Service.Exit), rendered into every
   subcommand's man page and asserted by the test suite. *)
let exits =
  [ Cmd.Exit.info Service.Exit.ok ~doc:"on success.";
    Cmd.Exit.info Service.Exit.operational_error
      ~doc:
        "on operational errors: unknown workload, failed workload, bad \
         request.";
    Cmd.Exit.info Service.Exit.verdict
      ~doc:
        "analysis verdict: the static analyzer proved at least one \
         analyzed loop sequential." ]

let cmd_info name = Cmd.info name ~doc:(List.assoc name subcommand_docs) ~exits

(* ------------------------------------------------------------------ *)
(* Flags shared by every service-backed subcommand. *)

let workload_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"WORKLOAD" ~doc:"Bundled workload name (see `jsceres list`).")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
    & info [ "format" ] ~docv:"FMT"
        ~doc:"Output format: $(b,text) or $(b,json).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Size of the work-stealing pool that batched requests fan out \
           over (1 = run in the calling domain).")

let retries_arg =
  Arg.(
    value & opt int 1
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a workload up to $(docv) times after a transient failure \
           (injected faults, interrupted syscalls); permanent failures — \
           parse errors, JS exceptions, watchdog overruns — are never \
           retried.")

let watchdog_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "watchdog-ms" ] ~docv:"MS"
        ~doc:
          "Deprecated alias of $(b,--deadline-ms); accepted for script \
           compatibility but warns on stderr. $(b,--deadline-ms) wins \
           when both are given.")

let deadline_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline in virtual milliseconds (the vclock \
           watchdog): a request exceeding it answers a structured \
           budget-exhausted failure instead of occupying its slot \
           forever.")

(* --watchdog-ms predates --deadline-ms and had drifted into an
   undocumented alias. It stays accepted, but use earns a one-line
   stderr deprecation warning, and --deadline-ms wins when both are
   given. *)
let resolve_deadline ~deadline_ms ~watchdog_ms =
  (match watchdog_ms with
   | Some _ ->
     prerr_endline
       "jsceres: warning: --watchdog-ms is a deprecated alias of \
        --deadline-ms"
   | None -> ());
  match deadline_ms with Some _ -> deadline_ms | None -> watchdog_ms

let find_workload name =
  match Workloads.Registry.find name with
  | Some w -> w
  | None ->
    Printf.eprintf "unknown workload %S; available:\n  %s\n" name
      (String.concat "\n  " Workloads.Registry.names);
    exit Service.Exit.operational_error

(* Render one service response the way the legacy subcommands printed
   their output, honouring --format=json, and exit with the response's
   code when it is not 0. [json] overrides the JSON rendering (analyze
   keeps its golden-file report format). *)
let emit ?(render = Service.Response.render_text) ?json format
    (resp : Service.Response.t) =
  (match (format, resp.result) with
   | `Text, Ok _ -> print_string (render resp)
   | `Text, Error e -> Printf.eprintf "jsceres: %s\n" e.message
   | `Json, _ ->
     (match (json, resp.result) with
      | Some j, Ok _ -> print_string (j resp)
      | _ ->
        print_endline (Service.Json.to_string (Service.Response.to_json resp))));
  let code = Service.Response.exit_code resp in
  if code <> Service.Exit.ok then exit code

(* One-request commands share this driver: resolve the workload early
   (uniform error text), build the request, run it on a fresh service. *)
let run_one ?scale ?focus ?max_nests ?render ?json ~pass name retries format =
  let w = find_workload name in
  let svc = Service.create ~retries () in
  let req = Service.Request.make ?scale ?focus ?max_nests pass w.name in
  emit ?render ?json format (Service.run svc req)

(* ------------------------------------------------------------------ *)

let list_cmd =
  let run () =
    print_string (Workloads.Registry.table1 ());
    List.iter
      (fun (w : Workloads.Workload.t) ->
         Printf.printf "  %-16s session %.0fs, %d scripted interaction(s)\n"
           w.name (w.session_ms /. 1000.)
           (List.length w.interactions))
      Workloads.Registry.all
  in
  Cmd.v (cmd_info "list") Term.(const run $ const ())

let par_exec_arg =
  Arg.(
    value & flag
    & info [ "par-exec" ]
        ~doc:
          "Execute statically-proven loop nests in parallel over the \
           work-stealing pool (share-nothing forks, deterministic merge). \
           Output stays byte-identical to sequential execution; nests the \
           merge cannot prove deterministic fall back to sequential.")

let par_stats_arg =
  Arg.(
    value & flag
    & info [ "par-stats" ]
        ~doc:
          "With --par-exec: print per-nest parallel-execution telemetry \
           (chunks, fork/merge time, fallbacks, pool counters) as JSON on \
           stderr.")

let print_session (ctx : Workloads.Harness.run_context) =
  List.iter print_endline (List.rev ctx.st.Interp.Value.console);
  let clock = ctx.st.Interp.Value.clock in
  Printf.printf "session: %.1f s total, %.2f s busy\n"
    (Ceres_util.Vclock.to_ms clock (Ceres_util.Vclock.now clock) /. 1000.)
    (Ceres_util.Vclock.to_ms clock (Ceres_util.Vclock.busy clock) /. 1000.)

let timeline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "timeline" ] ~docv:"FILE"
        ~doc:
          "Write a ThreadScope-style scheduler event timeline to $(docv): \
           one JSON object per line (per-domain task start/stop, steals, \
           idle-span starts; schema in DESIGN.md §14) covering the \
           parallel execution. Only the work-stealing pool emits events, \
           so the file is empty without parallel execution.")

(* Bracket [f] with the scheduler event trace when --timeline was
   given; events only accrue while a pool is running inside [f]. *)
let with_timeline timeline f =
  match timeline with
  | None -> f ()
  | Some path ->
    Js_parallel.Telemetry.Trace.start ();
    Fun.protect
      ~finally:(fun () ->
        Js_parallel.Telemetry.Trace.stop ();
        Js_parallel.Telemetry.Trace.write_file path;
        Printf.eprintf "jsceres: wrote timeline %s (%d event(s))\n%!" path
          (List.length (Js_parallel.Telemetry.Trace.events ())))
      f

let run_cmd =
  let run name par_exec jobs par_stats timeline =
    let w = find_workload name in
    if par_exec then
      with_timeline timeline (fun () ->
          Js_parallel.Pool.with_pool ~domains:(max 1 jobs) (fun pool ->
              let pe =
                Js_parallel.Par_exec.create
                  ~mode:(Js_parallel.Par_exec.Parallel pool)
                  ~jobs:(max 1 jobs) ()
              in
              let ctx = Workloads.Harness.run_plain ~par:pe w in
              print_session ctx;
              if par_stats then
                Printf.eprintf "par-exec telemetry: %s\n%!"
                  (Js_parallel.Par_exec.stats_json ~pool pe)))
    else print_session (Workloads.Harness.run_plain w)
  in
  Cmd.v (cmd_info "run")
    Term.(
      const run $ workload_arg $ par_exec_arg $ jobs_arg $ par_stats_arg
      $ timeline_arg)

let profile_cmd =
  let run name retries format =
    run_one ~pass:Service.Request.Profile name retries format
  in
  Cmd.v (cmd_info "profile")
    Term.(const run $ workload_arg $ retries_arg $ format_arg)

let loops_cmd =
  let run name retries format =
    run_one ~pass:Service.Request.Loops name retries format
  in
  Cmd.v (cmd_info "loops")
    Term.(const run $ workload_arg $ retries_arg $ format_arg)

let focus_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "f"; "focus" ] ~docv:"LOOP"
        ~doc:"Restrict dependence recording to the nest of this loop id.")

let deps_cmd =
  let run name focus retries format =
    run_one ?focus ~pass:Service.Request.Deps name retries format
  in
  Cmd.v (cmd_info "deps")
    Term.(const run $ workload_arg $ focus_arg $ retries_arg $ format_arg)

let analyze_cmd =
  let run name retries format =
    (* --format=json keeps printing the analyzer's report document
       (the format committed under test/golden/analyze/), not the
       service envelope; `serve` wraps the same document. *)
    run_one
      ~json:(fun resp ->
          Option.get (Service.Response.render_analyze_json resp))
      ~pass:Service.Request.Analyze name retries format
  in
  Cmd.v (cmd_info "analyze")
    Term.(const run $ workload_arg $ retries_arg $ format_arg)

let crossval_cmd =
  let run name retries format =
    run_one ~pass:Service.Request.Crossval name retries format
  in
  Cmd.v (cmd_info "crossval")
    Term.(const run $ workload_arg $ retries_arg $ format_arg)

let advise_cmd =
  let run name cores measure jobs timeline retries format =
    let w = find_workload name in
    let svc = Service.create ~retries () in
    let req = Service.Request.make ?cores Service.Request.Advise w.name in
    let resp = Service.run svc req in
    (* --timeline only records pool events, which only a --measure run
       creates, so it implies the measurement pass. *)
    let measure = measure || timeline <> None in
    (match resp.result with
     | Ok (Service.Response.Advise rep) when measure ->
       (* Ground truth is attached after the deterministic plan is
          computed, so the JSON/text renderings gain the measured
          section but the plan itself is unchanged. *)
       with_timeline timeline (fun () ->
           let n = Advisor.measure ~jobs:(max 1 jobs) rep w in
           Printf.eprintf "jsceres: measured %d nest(s) with par-exec\n%!" n)
     | _ -> ());
    emit
      ~json:(fun resp -> Option.get (Service.Response.render_advise_json resp))
      format resp
  in
  let cores_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "cores" ] ~docv:"N,.."
          ~doc:
            "Core counts to model predicted speedups at (comma-separated; \
             default 2,4,8,16).")
  in
  let measure_arg =
    Arg.(
      value & flag
      & info [ "measure" ]
          ~doc:
            "Grade the advisor: additionally execute the proven nests \
             over a real work-stealing pool (-j domains) and attach \
             measured speedups next to the predictions. Wall-clock \
             based, so the measured section is not deterministic.")
  in
  Cmd.v (cmd_info "advise")
    Term.(
      const run $ workload_arg $ cores_arg $ measure_arg $ jobs_arg
      $ timeline_arg $ retries_arg $ format_arg)

let inspect_cmd =
  let run name retries format =
    run_one ~render:Service.Response.render_inspect
      ~pass:Service.Request.Pipeline name retries format
  in
  Cmd.v (cmd_info "inspect")
    Term.(const run $ workload_arg $ retries_arg $ format_arg)

let survey_cmd =
  let run seed =
    let respondents = Survey.Generator.generate ~seed () in
    Printf.printf "%d synthetic respondents (seed %d)\n\n"
      (Array.length respondents) seed;
    let rows, uncoded = Survey.Aggregate.figure1 respondents in
    print_string (Survey.Aggregate.render_figure1 rows);
    Printf.printf "  (%d respondents without a codeable answer)\n\n" uncoded;
    print_string
      (Survey.Aggregate.render_figure2 (Survey.Aggregate.figure2 respondents));
    print_string
      (Survey.Aggregate.render_histogram
         ~title:"functional (1) .. imperative (5):"
         (Survey.Aggregate.figure3 respondents));
    print_string
      (Survey.Aggregate.render_histogram
         ~title:"monomorphic (1) .. polymorphic (5):"
         (Survey.Aggregate.figure4 respondents));
    Printf.printf "operator preference: %.0f%%; inter-rater Jaccard: %.2f\n"
      (Survey.Aggregate.operator_preference_pct respondents)
      (Survey.Coding.inter_rater_agreement respondents)
  in
  let seed_arg =
    Arg.(
      value & opt int 2015
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Seed for the synthetic respondent population.")
  in
  Cmd.v (cmd_info "survey") Term.(const run $ seed_arg)

let report_cmd =
  let run name dir =
    let w = find_workload name in
    let path = Workloads.Harness.export_report ~dir w in
    Printf.printf "wrote %s\n" path
  in
  let dir_arg =
    Arg.(
      value
      & opt string "reports"
      & info [ "o"; "output" ] ~docv:"DIR"
          ~doc:"Directory the markdown report is written into.")
  in
  Cmd.v (cmd_info "report") Term.(const run $ workload_arg $ dir_arg)

(* ------------------------------------------------------------------ *)
(* Batched pipeline: one Pipeline request per workload, coalesced into
   a single wave by the service (dedup + pool fan-out). Workload
   crashes — real bugs, watchdog overruns, injected chaos faults —
   come back as error responses and print as FAILED rows while the
   survivors print their rows; stdout stays byte-identical per chaos
   seed (all printed failure fields are virtual-time based). *)
let pipeline_cmd =
  let run names jobs stats keep_going chaos_seed retries watchdog_ms
      deadline_ms format par_exec =
    let watchdog_ms = resolve_deadline ~deadline_ms ~watchdog_ms in
    let ws =
      match names with
      | [] -> Workloads.Registry.all
      | ns -> List.map find_workload ns
    in
    (match chaos_seed with
     | Some seed -> Js_parallel.Fault.enable ~seed
     | None -> ignore (Js_parallel.Fault.enable_from_env ()));
    (* The service core supervises every request, so --keep-going is
       always in effect; the flag is kept for script compatibility. *)
    ignore keep_going;
    let svc = Service.create ~jobs ~retries ?watchdog_ms () in
    let reqs =
      List.map
        (fun (w : Workloads.Workload.t) ->
           Service.Request.make Service.Request.Pipeline w.name)
        ws
    in
    let resps = Service.run_batch svc reqs in
    (match format with
     | `Json ->
       List.iter
         (fun r ->
            print_endline
              (Service.Json.to_string (Service.Response.to_json r)))
         resps
     | `Text ->
       List.iter2
         (fun (w : Workloads.Workload.t) (r : Service.Response.t) ->
            print_string (Service.Response.render_text r);
            match r.result with
            | Ok _ -> ()
            | Error { failure = Some fl; _ } ->
              Printf.eprintf "jsceres: %s failed %s\n%!" w.name
                (Js_parallel.Supervisor.failure_details fl)
            | Error e ->
              Printf.eprintf "jsceres: %s failed: %s\n%!" w.name e.message)
         ws resps);
    let failed =
      List.filter_map
        (fun ((w : Workloads.Workload.t), (r : Service.Response.t)) ->
           match r.result with
           | Ok _ -> None
           | Error e -> Some (w, e))
        (List.combine ws resps)
    in
    if failed <> [] && format = `Text then begin
      Printf.printf "\n%d of %d workload(s) failed:\n" (List.length failed)
        (List.length ws);
      List.iter
        (fun ((w : Workloads.Workload.t), (e : Service.Response.error)) ->
           Printf.printf "  %-16s %s\n" w.name e.message)
        failed
    end;
    (if stats then
       match Service.pool_stats svc with
       | Some s ->
         Printf.printf "pool telemetry: %s\n" (Js_parallel.Telemetry.to_json s)
       | None -> ());
    Service.shutdown svc;
    (* --par-exec: determinism self-check. Re-run each workload plain
       (sequential) and with parallel loop execution and require the
       observable state to match byte for byte; reported on stderr so
       stdout stays identical with and without the flag. Skipped under
       chaos injection (the harness would not install the hook). *)
    let par_mismatch = ref false in
    if par_exec && not (Js_parallel.Fault.enabled ()) then
      Js_parallel.Pool.with_pool ~domains:(max 1 jobs) (fun pool ->
          List.iter
            (fun (w : Workloads.Workload.t) ->
               let seq = Workloads.Harness.run_plain w in
               let pe =
                 Js_parallel.Par_exec.create
                   ~mode:(Js_parallel.Par_exec.Parallel pool)
                   ~jobs:(max 1 jobs) ()
               in
               let par = Workloads.Harness.run_plain ~par:pe w in
               let state (ctx : Workloads.Harness.run_context) =
                 ( List.rev ctx.st.Interp.Value.console,
                   Ceres_util.Vclock.busy ctx.st.Interp.Value.clock,
                   Ceres_util.Vclock.now ctx.st.Interp.Value.clock )
               in
               if state seq <> state par then begin
                 par_mismatch := true;
                 Printf.eprintf
                   "jsceres: par-exec %s: output DIVERGED from sequential\n%!"
                   w.name
               end
               else
                 Printf.eprintf
                   "par-exec %s: identical to sequential (%d nest(s) \
                    parallel)\n%!"
                   w.name
                   (Js_parallel.Par_exec.nests_run pe))
            ws);
    if chaos_seed <> None then Js_parallel.Fault.disable ();
    if failed <> [] || !par_mismatch then exit Service.Exit.operational_error
  in
  let names_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workloads to analyze (default: all twelve).")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print the pool's scheduling telemetry as JSON at the end.")
  in
  let keep_going_arg =
    Arg.(
      value & flag
      & info [ "k"; "keep-going" ]
          ~doc:
            "Kept for compatibility: the service core always supervises \
             each workload, so failures become FAILED rows and the exit \
             status is nonzero if any workload failed.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:
            "Enable deterministic fault injection: the failure set is a \
             pure function of $(docv), so repeated runs are byte-identical. \
             Also enabled by the JSCERES_CHAOS environment variable.")
  in
  Cmd.v (cmd_info "pipeline")
    Term.(
      const run $ names_arg $ jobs_arg $ stats_arg $ keep_going_arg
      $ chaos_seed_arg $ retries_arg $ watchdog_ms_arg $ deadline_ms_arg
      $ format_arg $ par_exec_arg)

let serve_cmd =
  let run jobs retries watchdog_ms deadline_ms cache_capacity socket
      max_inflight queue_capacity drain_ms max_request_bytes max_sessions
      chaos_seed chaos_transport =
    (match chaos_seed with
     | Some seed -> Js_parallel.Fault.enable ~seed
     | None -> ignore (Js_parallel.Fault.enable_from_env ()));
    let watchdog_ms = resolve_deadline ~deadline_ms ~watchdog_ms in
    let svc =
      Service.create ~jobs ~retries ?watchdog_ms
        ?cache_capacity ()
    in
    (match socket with
     | None -> Service.serve_channels ~max_request_bytes svc stdin stdout
     | Some path ->
       let server =
         Service.Server.create
           ~config_override:(fun c ->
             { c with
               Service.Server.max_inflight;
               queue_capacity;
               drain_ms;
               max_request_bytes;
               max_sessions;
               chaos_transport })
           ~socket_path:path (Service.handler svc)
       in
       Service.Server.run server);
    Service.shutdown svc
  in
  let cache_capacity_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Result-cache entry bound (default 128; LRU eviction).")
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Serve many concurrent clients over a Unix-domain socket at \
             $(docv) instead of stdin/stdout. SIGTERM or a client's \
             {\"op\":\"shutdown\"} drains gracefully and exits 0.")
  in
  let max_inflight_arg =
    Arg.(
      value & opt int 4
      & info [ "max-inflight" ] ~docv:"M"
          ~doc:
            "Admission bound: at most $(docv) requests execute \
             concurrently; a bounded queue waits behind them and \
             anything beyond is shed with a structured overloaded \
             response carrying retry_after_ms.")
  in
  let queue_capacity_arg =
    Arg.(
      value & opt int 16
      & info [ "queue-capacity" ] ~docv:"Q"
          ~doc:"Admission wait-queue bound before shedding begins.")
  in
  let drain_ms_arg =
    Arg.(
      value & opt int 2000
      & info [ "drain-ms" ] ~docv:"MS"
          ~doc:
            "Graceful-drain budget: in-flight sessions get $(docv) ms to \
             finish after shutdown is requested; stragglers are then \
             force-closed.")
  in
  let max_request_bytes_arg =
    Arg.(
      value
      & opt int Service.Serve.default_max_request_bytes
      & info [ "max-request-bytes" ] ~docv:"B"
          ~doc:
            "Longest accepted request line; longer lines answer a \
             structured bad-request without buffering the excess.")
  in
  let max_sessions_arg =
    Arg.(
      value & opt int 64
      & info [ "max-sessions" ] ~docv:"S"
          ~doc:"Concurrent client connection bound (socket mode).")
  in
  let chaos_transport_arg =
    Arg.(
      value & flag
      & info [ "chaos-transport" ]
          ~doc:
            "With --chaos-seed (or JSCERES_CHAOS): additionally inject \
             deterministic transport faults — connections doomed at \
             accept, responses torn mid-write, mid-response disconnects \
             — keyed on the accept ordinal. Off by default so workload \
             chaos alone keeps per-session responses byte-identical.")
  in
  let chaos_seed_serve_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:
            "Enable deterministic fault injection (see $(b,pipeline)); \
             with --chaos-transport the seed also drives transport \
             faults.")
  in
  Cmd.v (cmd_info "serve")
    Term.(
      const run $ jobs_arg $ retries_arg $ watchdog_ms_arg $ deadline_ms_arg
      $ cache_capacity_arg $ socket_arg $ max_inflight_arg
      $ queue_capacity_arg $ drain_ms_arg $ max_request_bytes_arg
      $ max_sessions_arg $ chaos_seed_serve_arg $ chaos_transport_arg)

let loadgen_cmd =
  let run socket clients requests seed chaos_clients =
    let report =
      Service.Loadgen.run
        { Service.Loadgen.socket_path = socket;
          clients;
          requests_per_client = requests;
          seed;
          chaos_clients }
    in
    print_endline
      (Service.Json.to_string (Service.Loadgen.report_json report));
    if report.Service.Loadgen.dropped_connections > 0 then
      exit Service.Exit.operational_error
  in
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Unix-domain socket of the running server.")
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "c"; "clients" ] ~docv:"N"
          ~doc:"Concurrent client connections.")
  in
  let requests_arg =
    Arg.(
      value & opt int 100
      & info [ "n"; "requests" ] ~docv:"R"
          ~doc:"Requests per client (mixed passes over all workloads).")
  in
  let seed_arg =
    Arg.(
      value & opt int 2015
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:
            "Stream seed: the request mix (and any client chaos) is a \
             pure function of it.")
  in
  let chaos_clients_arg =
    Arg.(
      value & flag
      & info [ "chaos-clients" ]
          ~doc:
            "Make a seed-keyed fraction of requests misbehave: torn \
             request lines, disconnect-before-read, slow-loris writes. \
             The exit status still requires zero server-inflicted \
             drops of well-behaved exchanges.")
  in
  Cmd.v (cmd_info "loadgen")
    Term.(
      const run $ socket_arg $ clients_arg $ requests_arg $ seed_arg
      $ chaos_clients_arg)

(* ------------------------------------------------------------------ *)

let mode_arg =
  let modes =
    [ ("plain", `Plain); ("light", `Light); ("loops", `Loops); ("dep", `Dep) ]
  in
  Arg.(
    value
    & opt (enum modes) `Plain
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Instrumentation mode: $(b,plain), $(b,light), $(b,loops) or $(b,dep).")

let file_cmd =
  let run path mode =
    let source =
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let program = Jsir.Parser.parse_program source in
    let infos = Jsir.Loops.index program in
    let st = Interp.Eval.create () in
    Interp.Builtins.install st;
    ignore (Dom.Document.install st);
    (match mode with
     | `Plain -> Interp.Eval.run_program st program
     | `Light ->
       let lw = Ceres.Install.lightweight st in
       Interp.Eval.run_program st
         (Ceres.Instrument.program Ceres.Instrument.Lightweight program);
       ignore (Interp.Events.drain st);
       Printf.printf "in loops: %.3f ms\n" (Ceres.Lightweight.in_loops_ms lw)
     | `Loops ->
       let lp = Ceres.Install.loop_profile st infos in
       Interp.Eval.run_program st
         (Ceres.Instrument.program Ceres.Instrument.Loop_profile program);
       ignore (Interp.Events.drain st);
       print_string (Ceres.Report.loop_profile_report lp infos)
     | `Dep ->
       let rt = Ceres.Install.dependence st infos in
       Interp.Eval.run_program st
         (Ceres.Instrument.program Ceres.Instrument.Dependence program);
       ignore (Interp.Events.drain st);
       print_string (Ceres.Report.dependence_report rt infos));
    (match mode with
     | `Plain -> ignore (Interp.Events.drain st)
     | _ -> ());
    List.iter print_endline (List.rev st.Interp.Value.console)
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"MiniJS source file.")
  in
  Cmd.v (cmd_info "file") Term.(const run $ path_arg $ mode_arg)

let () =
  let doc = "JS-CERES: profiling and dependence analysis for MiniJS programs" in
  let info = Cmd.info "jsceres" ~version:"1.0.0" ~doc ~exits in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; run_cmd; profile_cmd; loops_cmd; deps_cmd; analyze_cmd;
            crossval_cmd; advise_cmd; inspect_cmd; pipeline_cmd; serve_cmd;
            loadgen_cmd; report_cmd; survey_cmd; file_cmd ]))
