(** Glue between instrumented programs and the analysis runtimes.

    Each function registers the [__ceres_*] intrinsic handlers for one
    analysis mode into an interpreter state and returns the runtime
    that accumulates the results. Handlers receive *unevaluated*
    operand expressions, so wrapped operations evaluate each operand
    exactly once and in the original order.

    Attach exactly one mode per interpreter state (the paper runs its
    stages as separate executions); re-registering replaces the
    previous handlers. *)

val lightweight : Interp.Value.state -> Lightweight.t
(** Sec. 3.1: total time spent under at least one syntactic loop. *)

val loop_profile :
  Interp.Value.state -> Jsir.Loops.info array -> Loop_profile.t
(** Sec. 3.2: per-loop instances, times and trip counts. *)

val dependence :
  ?focus:Jsir.Ast.loop_id list ->
  Interp.Value.state ->
  Jsir.Loops.info array ->
  Runtime.t
(** Sec. 3.3: the full dependence analysis. Also chains onto the
    state's host-access hook so DOM/canvas traffic is attributed to the
    open loops. *)
