(** Abstract syntax for MiniJS.

    The JavaScript subset this reproduction interprets: everything the
    paper's analysis cares about — [var] function scoping (the Sec. 3.3
    example hinges on it), closures, prototype objects, dynamic typing,
    arrays with higher-order methods, and the full statement/operator
    repertoire of pre-ES6 imperative JavaScript including labeled
    break/continue.

    Every syntactic loop carries a {!loop_id} assigned by the parser in
    source order; JS-CERES keys all per-loop statistics and dependence
    characterizations on it. {!Intrinsic} nodes never appear in parsed
    source: the instrumenter inserts them and the interpreter
    dispatches them to the registered analysis runtime. *)

type pos = { line : int; col : int }
(** 1-based source position. *)

type span = { left : pos; right : pos }

val no_pos : pos
val no_span : span
(** Used for synthesised (instrumentation) nodes. *)

type loop_id = int
(** Dense, 0-based, in source order. *)

type unop = Neg | Positive | Not | Bitnot | Typeof | Void | Delete

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq (** [==] *)
  | Neq (** [!=] *)
  | Strict_eq (** [===] *)
  | Strict_neq (** [!==] *)
  | Lt | Le | Gt | Ge
  | Band | Bor | Bxor
  | Lshift
  | Rshift (** [>>] *)
  | Urshift (** [>>>] *)
  | Instanceof
  | In

type logop = And | Or

type assign_op = binop option
(** Compound assignment carries the underlying operator; plain [=] is
    [None]. *)

type expr = { e : expr_desc; at : span; mutable lex : int }
(** [lex] is the resolver's stamp ({!Resolve.program}); [-1] means
    unresolved (dynamic path). For [Ident] and [Assign]/[Update] with
    a [Tgt_ident] it packs a lexical address; for [String] it is the
    literal's interned symbol; for [Intrinsic] the symbol of the
    intrinsic's name. *)

and expr_desc =
  | Number of float
  | String of string
  | Bool of bool
  | Null
  | Undefined
  | Ident of string
  | This
  | Array_lit of expr list
  | Object_lit of (string * expr) list
  | Function_expr of func
  | Member of expr * string (** [e.f] *)
  | Index of expr * expr (** [e[i]] *)
  | Call of expr * expr list
  | New of expr * expr list
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Logical of logop * expr * expr (** short-circuiting *)
  | Cond of expr * expr * expr (** [c ? t : f] *)
  | Assign of target * assign_op * expr
  | Update of update_kind * bool * target (** kind, prefix?, target *)
  | Seq of expr * expr (** the comma operator *)
  | Intrinsic of string * expr list
      (** instrumentation hook; arguments are passed unevaluated to the
          registered handler *)

and update_kind = Incr | Decr

and target =
  | Tgt_ident of string
  | Tgt_member of expr * string
  | Tgt_index of expr * expr

and func = {
  fname : string option;
  params : string list;
  body : stmt list;
  fspan : span;
  mutable layout : layout option;
      (** slot layout of the frame, attached by the resolver; [None]
          runs on the dynamic string-keyed path *)
}

(** Frame layout: fixed slots for every parameter, [var]-hoisted name
    and function declaration of one function, so activation records
    become value arrays. Catch parameters are not hoisted and stay in
    the scope's dynamic side table. *)
and layout = {
  l_size : int;
  l_names : string array; (** slot -> name *)
  l_syms : int array; (** slot -> interned symbol *)
  l_table : (string, int) Hashtbl.t; (** name -> slot (dynamic refs) *)
  l_param_slots : int array;
  l_arguments : int; (** slot of [arguments]; -1 for the global frame *)
  l_uses_arguments : bool;
      (** false = the per-call [arguments] array is unobservable and
          its allocation is skipped *)
  l_decls : (int * func) list; (** named function decls, source order *)
  l_fname_static : bool;
      (** no runtime wrapper-scope test needed for the function
          expression's own name *)
}

and stmt = { s : stmt_desc; sat : span }

and stmt_desc =
  | Expr_stmt of expr
  | Var_decl of (string * expr option) list
  | If of expr * stmt * stmt option
  | While of loop_id * expr * stmt
  | Do_while of loop_id * stmt * expr
  | For of loop_id * for_init option * expr option * expr option * stmt
  | For_in of loop_id * for_in_binder * expr * stmt
  | Return of expr option
  | Break of string option (** optional target label *)
  | Continue of string option
  | Throw of expr
  | Try of stmt list * (string * stmt list) option * stmt list option
      (** body, catch (name, body), finally *)
  | Block of stmt list
  | Func_decl of func
  | Switch of expr * (expr option * stmt list) list
      (** cases ([None] = default), with fall-through *)
  | Labeled of string * stmt
  | Empty

and for_init =
  | Init_var of (string * expr option) list (** [for (var i = 0; ...)] *)
  | Init_expr of expr

and for_in_binder =
  | Binder_var of string (** [for (var k in o)] *)
  | Binder_ident of string (** [for (k in o)] *)

type program = {
  stmts : stmt list;
  loop_count : int;
  mutable glayout : layout option; (** attached by the resolver *)
  mutable resolved_for : Ceres_util.Symbol.table option;
}
(** [loop_count] is the number of {!loop_id}s the parser assigned. *)

(** {1 Lexical addresses} (packed into [expr.lex]) *)

val lex_unresolved : int (** -1 *)

val lex_global_depth : int
(** Depth value marking the global frame. *)

val lex_make : depth:int -> slot:int -> int
val lex_depth : int -> int
val lex_slot : int -> int

(** {1 Constructors} (used by the instrumenter) *)

val mk : ?at:span -> expr_desc -> expr

val mk_func :
  ?fname:string option -> params:string list -> body:stmt list -> span -> func

val mk_program : stmts:stmt list -> loop_count:int -> program
val mk_stmt : ?at:span -> stmt_desc -> stmt
val number : float -> expr
val string_lit : string -> expr
val ident : string -> expr
val intrinsic : string -> expr list -> expr
val expr_stmt : expr -> stmt

(** {1 Names} *)

type loop_kind = Kwhile | Kdo_while | Kfor | Kfor_in

val loop_kind_name : loop_kind -> string
val unop_name : unop -> string
val binop_name : binop -> string
val logop_name : logop -> string
