(** Value-range analysis: interval + integer-exactness abstract
    interpretation over the resolved AST (stage 2.5).

    An interval [iv] bounds every concrete value of an expression;
    [exact_int] additionally asserts the value is always an integer
    represented exactly by a double (magnitude at most 2^53). The
    exactness bit only survives IEEE-exact operations — integer
    add/sub/mul under the 2^53 bound, the ToInt32/ToUint32 family,
    [Math.floor]-like rounders — so downstream proofs
    ({!Commute}, {!Subscript}) can rely on it bit-for-bit. *)

open Jsir

type iv = { lo : float; hi : float; exact_int : bool }

type t

val create : Scope.t -> t

val top : iv
val point : float -> iv
val join : iv -> iv -> iv
val exact_int : iv -> bool

val bounded_by : iv -> float -> bool
(** Both interval ends within magnitude [m]. *)

val const_global : t -> string -> float option
(** Value of a single-definition top-level numeric global whose RHS
    folds through exact arithmetic; [None] for anything reassigned,
    non-numeric, or defined in a nested frame. *)

val eval : t -> Scope.fid -> env:(string -> iv option) -> Ast.expr -> iv option
(** Abstract-evaluate an expression; [env] supplies intervals for
    names carrying loop-local facts (induction variables), unknown
    names fall back to {!const_global}. [None] = no information. *)

val induction_iv : t -> Scope.fid -> env:(string -> iv option) ->
  Subscript.induction -> iv option
(** Interval of a recognized induction variable over the whole loop:
    initial value through bound. *)
