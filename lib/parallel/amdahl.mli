(** Amdahl's-law bounds (paper Sec. 4.2).

    The paper: "Considering Amdahl's law, the upper bound for speedup
    is greater than 3x for 5 of the 12 applications when only counting
    easy to parallelize loops." *)

val speedup : parallel_fraction:float -> workers:int -> float
(** Maximum speedup when [parallel_fraction] of the running time is
    perfectly parallelizable over [workers]; [workers <= 0] means
    unlimited. The fraction is clamped to [0, 1]. *)

val asymptote : parallel_fraction:float -> float
(** [speedup ~workers:0]; [infinity] when the fraction is 1. *)

val sweep :
  parallel_fraction:float -> workers_list:int list -> (int * float) list

val fraction_for : target_speedup:float -> float
(** Minimum parallel fraction needed to reach a speedup with unlimited
    workers: [1 - 1/s]. *)

val efficiency : measured_speedup:float -> workers:int -> float

val karp_flatt : measured_speedup:float -> workers:int -> float
(** Karp–Flatt experimentally-determined serial fraction,
    [(1/s - 1/n) / (1 - 1/n)] for a measured speedup [s] on [n]
    workers; a fraction that grows with [n] indicates scheduling
    overhead rather than inherently serial work. Returns [1.] when
    [workers <= 1] or the speedup is non-positive. *)
