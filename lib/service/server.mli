(** Unix-domain socket front-end for the service: N concurrent client
    sessions (one systhread each) speaking the {!Serve} JSONL
    protocol, multiplexed over one service instance.

    The request path is an explicit accept → parse → admit → execute
    → respond pipeline with three robustness guarantees:

    - {b crash confinement}: torn lines, oversized frames, bad JSON
      and mid-request disconnects are confined to their session;
    - {b no silent drops}: requests the server will not run (queue
      full, draining, session cap) get a structured [overloaded]
      response with a [retry_after_ms] hint;
    - {b graceful drain}: SIGTERM/SIGINT or a client's
      [{"op":"shutdown"}] stops accepting, finishes in-flight work,
      sheds queued work, force-closes stragglers when the drain
      budget [drain_ms] runs out, and {!run} returns (exit 0).

    Control ops bypass admission; execution requests pass through the
    {!Admission} gate, and every decision is visible in the
    process-wide telemetry counters
    ([requests_admitted]/[shed]/[timed_out], [sessions_dropped]).

    With [chaos_transport] set, deterministic seed-keyed transport
    faults ({!Js_parallel.Fault.transport_plan}) are injected:
    connections doomed at accept, responses torn mid-write,
    mid-response disconnects — keyed on the accept ordinal. *)

type config = {
  socket_path : string;
  max_inflight : int;  (** concurrent executing requests (default 4) *)
  queue_capacity : int;  (** waiters beyond that before shedding (16) *)
  drain_ms : int;  (** grace for in-flight work at drain (2000) *)
  max_request_bytes : int;  (** per-line bound ({!Serve.default_max_request_bytes}) *)
  max_sessions : int;  (** concurrent client connections (64) *)
  chaos_transport : bool;  (** inject seed-keyed transport faults *)
}

val default_config : socket_path:string -> config

type t

val create :
  ?config_override:(config -> config) -> socket_path:string ->
  Serve.handler -> t
(** Binds and listens on [socket_path] (unlinking any stale socket
    file first). The handler's [health] field is replaced with the
    server's own socket-transport health document. Raises
    [Unix.Unix_error] if the socket cannot be bound. *)

val run : t -> unit
(** Accept loop until drain is requested (signal or shutdown op),
    then drain: stop accepting, unlink the socket, shed the queue,
    wait up to [drain_ms] for live sessions, force-close stragglers,
    join every session thread. Returns normally — the caller owns the
    exit code. *)

val begin_drain : t -> unit
(** Request drain from outside (used by tests); idempotent. *)

val draining : t -> bool
val live_sessions : t -> int
