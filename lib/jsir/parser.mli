(** Recursive-descent parser for MiniJS.

    Builds {!Ast.program} values from source text. Every syntactic loop
    receives a fresh {!Ast.loop_id} in source order; JS-CERES keys its
    profiling and dependence records on these identifiers, exactly as
    the paper keys its reports on syntactic loops ("while(line 24)",
    "for(line 6)").

    Semicolons are required except before ['}'] and end-of-input (a
    deliberately small slice of automatic semicolon insertion — the
    bundled workloads are written to it). *)

exception Parse_error of string * Ast.pos

val parse_program : string -> Ast.program
(** Parse a full script. @raise Parse_error on malformed input. *)

val parse_expression : string -> Ast.expr
(** Parse a single expression (used by tests and the REPL-style
    examples). @raise Parse_error if trailing input remains. *)
