(* Affine subscript analysis (stage 3 support).

   Parses subscript expressions into symbolic linear forms ({!Lin}),
   extracts induction descriptions from [for] headers and iteration
   extents from inner counted loops, and decides whether the element
   footprint a loop iteration touches on a given array is provably
   disjoint from every other iteration's.

   The disjointness test is the classic stride-vs-spread argument,
   kept symbolic: with all accesses of a root written by the loop
   affine in the analyzed induction variable with a common coefficient
   [A], the per-iteration footprint lies in an interval of width
   [spread] that slides by [stride = A*step] each iteration; the
   footprints are pairwise disjoint when [|stride| - spread >= 1],
   where the difference must *cancel to an integer constant* (that is
   how [4*W] stride beats a [4*W - 1] spread in an RGBA kernel
   regardless of the runtime width; when inner extents are empty the
   claim holds vacuously because no access executes). *)

open Jsir

type induction = {
  ivar : string;
  lower : Lin.t option; (* initial value, when affine *)
  step : int; (* constant signed step per iteration *)
  upper : (Lin.t * bool) option; (* bound and strictness, from i<e / i<=e *)
  span_line : int;
}

(* ------------------------------------------------------------------ *)
(* Expression -> linear form. [subst] supplies forms for local names
   proven single-assignment in the loop body; unknown names become
   atoms (the caller later checks every residual atom is invariant).
   [call] lets the caller inline user helper calls — index helpers
   like [IX(x, y) = x + (N+2)*y] — by substituting argument forms
   into the callee's (pure, single-return, affine) body. *)

let rec lin_of ?(call : (Ast.expr -> Ast.expr list -> Lin.t option) option)
    ~(subst : string -> Lin.t option) (e : Ast.expr) : Lin.t option =
  match e.e with
  | Ast.Number f ->
    if Float.is_integer f && Float.abs f <= 1e9 then
      Some (Lin.const (int_of_float f))
    else None
  | Ast.Ident x -> (
      match subst x with Some l -> Some l | None -> Some (Lin.var x))
  | Ast.Binop (Ast.Add, a, b) -> (
      match (lin_of ?call ~subst a, lin_of ?call ~subst b) with
      | Some la, Some lb -> Some (Lin.add la lb)
      | _ -> None)
  | Ast.Binop (Ast.Sub, a, b) -> (
      match (lin_of ?call ~subst a, lin_of ?call ~subst b) with
      | Some la, Some lb -> Some (Lin.sub la lb)
      | _ -> None)
  | Ast.Binop (Ast.Mul, a, b) -> (
      match (lin_of ?call ~subst a, lin_of ?call ~subst b) with
      | Some la, Some lb -> Lin.mul la lb
      | _ -> None)
  | Ast.Unop (Ast.Neg, a) -> Option.map Lin.neg (lin_of ?call ~subst a)
  | Ast.Unop (Ast.Positive, a) -> lin_of ?call ~subst a
  | Ast.Seq (_, r) -> lin_of ?call ~subst r
  | Ast.Call (f, args) -> (
      match call with Some cb -> cb f args | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Induction recognition from a [for] header. *)

let const_of (e : Ast.expr) =
  match e.e with
  | Ast.Number f when Float.is_integer f && Float.abs f <= 1e9 ->
    Some (int_of_float f)
  | _ -> None

(* The update gives us the variable and the step. [const_env]
   (typically {!Range.const_global}) lets a symbolic step like
   [i += W] resolve when [W] is a proven constant. *)
let step_of ?(const_env = fun (_ : string) -> None) (u : Ast.expr) :
  (string * int) option =
  let const_of (e : Ast.expr) =
    match const_of e with
    | Some c -> Some c
    | None -> (
        match e.e with
        | Ast.Ident n -> (
            match const_env n with
            | Some f when Float.is_integer f && Float.abs f <= 1e9 ->
              Some (int_of_float f)
            | _ -> None)
        | _ -> None)
  in
  match u.e with
  | Ast.Update (Ast.Incr, _, Ast.Tgt_ident x) -> Some (x, 1)
  | Ast.Update (Ast.Decr, _, Ast.Tgt_ident x) -> Some (x, -1)
  | Ast.Assign (Ast.Tgt_ident x, Some Ast.Add, e) ->
    Option.map (fun c -> (x, c)) (const_of e)
  | Ast.Assign (Ast.Tgt_ident x, Some Ast.Sub, e) ->
    Option.map (fun c -> (x, -c)) (const_of e)
  | Ast.Assign
      (Ast.Tgt_ident x, None, { e = Ast.Binop (Ast.Add, l, r); _ }) -> (
      match (l.e, const_of r, const_of l) with
      | Ast.Ident y, Some c, _ when String.equal x y -> Some (x, c)
      | _, _, Some c -> (
          match r.e with
          | Ast.Ident y when String.equal x y -> Some (x, c)
          | _ -> None)
      | _ -> None)
  | Ast.Assign
      (Ast.Tgt_ident x, None, { e = Ast.Binop (Ast.Sub, l, r); _ }) -> (
      match (l.e, const_of r) with
      | Ast.Ident y, Some c when String.equal x y -> Some (x, -c)
      | _ -> None)
  | _ -> None

let bound_of ~ivar ~step (c : Ast.expr) ~subst : (Lin.t * bool) option =
  let lin e = lin_of ~subst e in
  match c.e with
  | Ast.Binop (op, { e = Ast.Ident x; _ }, e) when String.equal x ivar -> (
      match (op, step > 0) with
      | Ast.Lt, true -> Option.map (fun l -> (l, true)) (lin e)
      | Ast.Le, true -> Option.map (fun l -> (l, false)) (lin e)
      | Ast.Gt, false -> Option.map (fun l -> (l, true)) (lin e)
      | Ast.Ge, false -> Option.map (fun l -> (l, false)) (lin e)
      | _ -> None)
  | Ast.Binop (op, e, { e = Ast.Ident x; _ }) when String.equal x ivar -> (
      (* e < i  ==  i > e *)
      match (op, step > 0) with
      | Ast.Gt, true -> Option.map (fun l -> (l, true)) (lin e)
      | Ast.Ge, true -> Option.map (fun l -> (l, false)) (lin e)
      | Ast.Lt, false -> Option.map (fun l -> (l, true)) (lin e)
      | Ast.Le, false -> Option.map (fun l -> (l, false)) (lin e)
      | _ -> None)
  | _ -> None

let induction_of_for ?(subst = fun (_ : string) -> None)
    ?(const_env = fun (_ : string) -> None) (init : Ast.for_init option)
    (cond : Ast.expr option) (update : Ast.expr option) ~(line : int) :
  induction option =
  match Option.bind update (step_of ~const_env) with
  | None -> None
  | Some (ivar, step) ->
    if step = 0 then None
    else
      let lower =
        match init with
        | Some (Ast.Init_var decls) ->
          List.find_map
            (fun (n, i) ->
               if String.equal n ivar then Option.bind i (lin_of ~subst)
               else None)
            decls
        | Some (Ast.Init_expr { e = Ast.Assign (Ast.Tgt_ident x, None, e); _ })
          when String.equal x ivar ->
          lin_of ~subst e
        | _ -> None
      in
      let upper = Option.bind cond (bound_of ~ivar ~step ~subst) in
      Some { ivar; lower; step; upper; span_line = line }

(* Inclusive value range of a counted inner loop, for footprint
   expansion. Requires a known affine lower bound, a positive constant
   step and an upper bound; with step s > 0 and bound U, [U - 1]
   (strict) or [U] (inclusive) over-approximates the maximum value
   soundly for any s. *)
let extent_of (ind : induction) : (Lin.t * Lin.t) option =
  match (ind.lower, ind.upper) with
  | Some lo, Some (u, strict) when ind.step > 0 ->
    Some (lo, if strict then Lin.sub u (Lin.const 1) else u)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Footprint disjointness. *)

type access = { sub : Lin.t; line : int; w : bool }

type footprint_result =
  | Disjoint
  | Same_slot of int (* all accesses hit one slot per iteration: line *)
  | Anti_only
    (* every cross-iteration conflict is an anti dependence: a later
       iteration overwrites what an earlier one read — safe under
       snapshot-fork execution, observable as WAR at runtime *)
  | Unproven of string * int

(* Substitute an inner induction variable by its [lo, hi] range inside
   an interval pair, keeping soundness: positive coefficients pull
   [lo] into the lower end and [hi] into the upper, negative ones the
   reverse. The coefficient must be an integer constant. *)
let expand_var v (lo_v, hi_v) (lo, hi) =
  let expand_end ~is_lo l =
    match Lin.split v l with
    | None -> None
    | Some (coeff, rest) -> (
        match Lin.is_const coeff with
        | None -> None
        | Some 0 -> Some rest
        | Some c ->
          let pick = if (c > 0) = is_lo then lo_v else hi_v in
          Some (Lin.add rest (Lin.scale c pick)))
  in
  match (expand_end ~is_lo:true lo, expand_end ~is_lo:false hi) with
  | Some lo', Some hi' -> Some (lo', hi')
  | _ -> None

(* Anti-only classification, tried when plain disjointness fails: with
   a constant per-iteration stride [A = a*step] and point accesses
   (no inner-loop spread), a read at offset [w + d] from the single
   write-slot family conflicts with the write of iteration [k + d/A];
   when [d/A > 0] the write happens *later* — the dependence is anti
   (write-after-read), which snapshot-fork execution preserves (every
   chunk reads pre-loop state, exactly what the sequential run reads
   through an anti dependence). Non-divisible offsets never conflict.
   Flow ([d/A < 0]) or output (distinct write slots in one residue
   class) conflicts reject. *)
let anti_only ~step oks =
  match oks with
  | [] -> false
  | (a0, _, _, _, _) :: _ -> (
      match Lin.is_const a0 with
      | None | Some 0 -> false
      | Some ac ->
        let stride = ac * step in
        List.for_all (fun (_, lo, hi, _, _) -> Lin.equal lo hi) oks
        &&
        let writes = List.filter (fun (_, _, _, _, w) -> w) oks in
        let reads = List.filter (fun (_, _, _, _, w) -> not w) oks in
        writes <> []
        && List.for_all
             (fun (_, w1, _, _, _) ->
                List.for_all
                  (fun (_, w2, _, _, _) ->
                     match Lin.is_const (Lin.sub w1 w2) with
                     | Some d -> d = 0 || d mod stride <> 0
                     | None -> false)
                  writes)
             writes
        && List.for_all
             (fun (_, r, _, _, _) ->
                List.for_all
                  (fun (_, w, _, _, _) ->
                     match Lin.is_const (Lin.sub r w) with
                     | Some d ->
                       d = 0 || d mod stride <> 0 || d * stride > 0
                     | None -> false)
                  writes)
             reads)

let check ~(ivar : string) ~(step : int)
    ~(inner : (string * (Lin.t * Lin.t)) list)
    ~(invariant : string -> bool) ~(accesses : access list) :
  footprint_result =
  match accesses with
  | [] -> Disjoint
  | first :: _ -> (
      let inner_names = List.map fst inner in
      (* Per access: split the analyzed induction variable out, then
         expand inner induction variables into interval ends. *)
      let prepared =
        List.map
          (fun (a : access) ->
             match Lin.split ivar a.sub with
             | None -> Error ("non-linear use of " ^ ivar, a.line)
             | Some (coeff_a, rest) ->
               if
                 List.exists
                   (fun v -> Lin.mentions v coeff_a)
                   inner_names
               then
                 Error
                   ( "induction coefficient varies with an inner loop",
                     a.line )
               else
                 let interval =
                   List.fold_left
                     (fun acc (v, range) ->
                        match acc with
                        | None -> None
                        | Some iv -> expand_var v range iv)
                     (Some (rest, rest))
                     inner
                 in
                 (match interval with
                  | None ->
                    Error ("inner extent not expandable", a.line)
                  | Some (lo, hi) ->
                    (* every residual name must be loop-invariant *)
                    let residual =
                      List.sort_uniq String.compare
                        (Lin.vars coeff_a @ Lin.vars lo @ Lin.vars hi)
                    in
                    (match
                       List.find_opt (fun v -> not (invariant v)) residual
                     with
                     | Some v ->
                       Error ("subscript depends on loop-varying " ^ v,
                              a.line)
                     | None -> Ok (coeff_a, lo, hi, a.line, a.w))))
          accesses
      in
      match
        List.find_map
          (function Error e -> Some e | Ok _ -> None)
          prepared
      with
      | Some (why, line) -> Unproven (why, line)
      | None -> (
          let oks =
            List.filter_map
              (function Ok x -> Some x | Error _ -> None)
              prepared
          in
          let a0, _, _, _, _ = List.hd oks in
          if
            not
              (List.for_all (fun (a, _, _, _, _) -> Lin.equal a a0) oks)
          then
            Unproven
              ("accesses advance at different rates in the induction",
               first.line)
          else if Lin.is_zero a0 then Same_slot first.line
          else
            let unproven_or_anti (why, ln) =
              if anti_only ~step oks then Anti_only
              else Unproven (why, ln)
            in
            (* common symbolic part of the interval ends, extremal
               constant offsets *)
            let lo_syms =
              List.map (fun (_, lo, _, _, _) -> Lin.drop_const lo) oks
            and hi_syms =
              List.map (fun (_, _, hi, _, _) -> Lin.drop_const hi) oks
            in
            let lo0 = List.hd lo_syms and hi0 = List.hd hi_syms in
            if
              not
                (List.for_all (Lin.equal lo0) lo_syms
                 && List.for_all (Lin.equal hi0) hi_syms)
            then
              unproven_or_anti
                ("footprint ends differ symbolically across accesses",
                 first.line)
            else
              let lo_min =
                List.fold_left
                  (fun m (_, lo, _, _, _) -> min m (Lin.const_part lo))
                  max_int oks
              and hi_max =
                List.fold_left
                  (fun m (_, _, hi, _, _) -> max m (Lin.const_part hi))
                  min_int oks
              in
              let spread =
                Lin.add
                  (Lin.sub hi0 lo0)
                  (Lin.const (hi_max - lo_min))
              in
              let stride = Lin.scale step a0 in
              let fits d =
                match Lin.is_const d with
                | Some c when c >= 1 -> true
                | _ -> false
              in
              if
                fits (Lin.sub stride spread)
                || fits (Lin.sub (Lin.neg stride) spread)
              then Disjoint
              else
                unproven_or_anti
                  ( Printf.sprintf
                      "stride %s does not clear footprint spread %s"
                      (Lin.to_string stride) (Lin.to_string spread),
                    first.line )))

(* For-in loops: the binder enumerates *distinct* keys, so a root is
   safe exactly when every access indexes it by the binder alone. *)
let check_for_in ~(binder : string) ~(accesses : access list) :
  footprint_result =
  let key = Lin.var binder in
  match
    List.find_opt (fun (a : access) -> not (Lin.equal a.sub key)) accesses
  with
  | None -> Disjoint
  | Some a -> Unproven ("subscript is not the for-in key", a.line)
