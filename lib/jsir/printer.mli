(** Pretty-printer from MiniJS AST back to JavaScript source.

    Output re-parses to a structurally equal AST (the property tests
    rely on this), with one documented exception: {!Ast.Intrinsic}
    nodes — which only the instrumenter creates — are printed as calls
    to their [__ceres_*] name, so printed instrumented code is readable
    but round-trips to a plain {!Ast.Call}. *)

val number_to_string : float -> string
(** JavaScript-style number rendering: integral values print without a
    decimal point, [nan] prints ["NaN"], infinities print
    ["Infinity"]/["-Infinity"]. *)

val string_to_source : string -> string
(** Quote and escape a string as a double-quoted JS literal. *)

val expr_to_string : Ast.expr -> string
(** One-line rendering of an expression. *)

val stmt_to_string : ?indent:int -> Ast.stmt -> string
(** Multi-line rendering of a statement. *)

val program_to_string : Ast.program -> string
(** Full-script rendering. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_program : Format.formatter -> Ast.program -> unit
