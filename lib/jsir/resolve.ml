(* Front-end resolution pass: runs once per program (after parsing,
   and after instrumentation when a program is instrumented), before
   execution.

   It does three things in one walk:
   - interns every identifier, property-name string literal and
     intrinsic name into the state's symbol table (canonicalization is
     computed there, once per name);
   - computes a slot [layout] for every function frame and for the
     global frame, mirroring the evaluator's hoisting semantics
     exactly ([var] declarations, for/for-in heads, named function
     declarations, parameters, [arguments]) — catch parameters are
     *not* hoisted (the evaluator declares them dynamically at
     catch-entry), so any name a catch clause binds is poisoned for
     static resolution in that function and everything nested in it;
   - stamps every variable reference with a packed [(depth, slot)]
     lexical address in [expr.lex], where depth counts function-frame
     boundaries and the global frame is a sentinel depth. References
     that cannot be proven (catch-poisoned names, names a runtime
     wrapper scope for a named function expression may bind, names not
     statically bound anywhere — possibly implicit globals) stay
     unresolved and take the evaluator's dynamic path, which is
     byte-for-byte the old semantics.

   The pass is idempotent and overwrites every stamp it is responsible
   for, so re-resolving a program (e.g. against a different state's
   table) is safe. *)

open Ast
module Symbol = Ceres_util.Symbol

(* ------------------------------------------------------------------ *)
(* Hoisting collection: byte-compatible with the evaluator's
   [hoisted_names]/[function_decls] (eval.ml); kept in the same shapes
   so the slot population is exactly the set of names the old code
   declared at function entry. *)

let rec hoisted_names acc stmts = List.fold_left hoisted_of_stmt acc stmts

and hoisted_of_stmt acc (s : stmt) =
  match s.s with
  | Var_decl decls -> List.fold_left (fun acc (n, _) -> n :: acc) acc decls
  | Func_decl f -> (match f.fname with Some n -> n :: acc | None -> acc)
  | If (_, t, e) ->
    let acc = hoisted_of_stmt acc t in
    (match e with Some e -> hoisted_of_stmt acc e | None -> acc)
  | While (_, _, body) | Do_while (_, body, _) -> hoisted_of_stmt acc body
  | For (_, init, _, _, body) ->
    let acc =
      match init with
      | Some (Init_var decls) ->
        List.fold_left (fun acc (n, _) -> n :: acc) acc decls
      | _ -> acc
    in
    hoisted_of_stmt acc body
  | For_in (_, binder, _, body) ->
    let acc =
      match binder with Binder_var n -> n :: acc | Binder_ident _ -> acc
    in
    hoisted_of_stmt acc body
  | Try (body, catch, finally) ->
    let acc = hoisted_names acc body in
    let acc =
      match catch with Some (_, cb) -> hoisted_names acc cb | None -> acc
    in
    (match finally with Some fb -> hoisted_names acc fb | None -> acc)
  | Block body -> hoisted_names acc body
  | Switch (_, cases) ->
    List.fold_left (fun acc (_, body) -> hoisted_names acc body) acc cases
  | Labeled (_, body) -> hoisted_of_stmt acc body
  | Expr_stmt _ | Return _ | Break _ | Continue _ | Throw _ | Empty -> acc

let rec function_decls acc stmts =
  List.fold_left
    (fun acc (s : stmt) ->
       match s.s with
       | Func_decl f -> f :: acc
       | Block body -> function_decls acc body
       | Labeled (_, body) -> function_decls acc [ body ]
       | If (_, t, e) ->
         let acc = function_decls acc [ t ] in
         (match e with Some e -> function_decls acc [ e ] | None -> acc)
       | _ -> acc)
    acc stmts

(* Names bound by catch clauses at this function level (not descending
   into nested functions): these are declared dynamically at
   catch-entry and poison static resolution of the name. *)
let rec catch_names_stmts acc stmts =
  List.fold_left catch_names_of_stmt acc stmts

and catch_names_of_stmt acc (s : stmt) =
  match s.s with
  | Try (body, catch, finally) ->
    let acc = catch_names_stmts acc body in
    let acc =
      match catch with
      | Some (p, cb) -> catch_names_stmts (p :: acc) cb
      | None -> acc
    in
    (match finally with
     | Some fb -> catch_names_stmts acc fb
     | None -> acc)
  | If (_, t, e) ->
    let acc = catch_names_of_stmt acc t in
    (match e with Some e -> catch_names_of_stmt acc e | None -> acc)
  | While (_, _, body) | Do_while (_, body, _) -> catch_names_of_stmt acc body
  | For (_, _, _, _, body) | For_in (_, _, _, body) ->
    catch_names_of_stmt acc body
  | Block body -> catch_names_stmts acc body
  | Switch (_, cases) ->
    List.fold_left (fun acc (_, body) -> catch_names_stmts acc body) acc cases
  | Labeled (_, body) -> catch_names_of_stmt acc body
  | Var_decl _ | Func_decl _ | Expr_stmt _ | Return _ | Break _ | Continue _
  | Throw _ | Empty ->
    acc

(* Does this function level mention [arguments] as a variable? Only
   own-level references matter: nested functions resolve [arguments]
   to their own frame first. When false, the per-call array is
   unobservable and the evaluator skips allocating it. *)
let rec mentions_arguments_stmts stmts =
  List.exists mentions_arguments_stmt stmts

and mentions_arguments_stmt (s : stmt) =
  match s.s with
  | Expr_stmt e -> mentions_arguments_expr e
  | Var_decl decls ->
    List.exists
      (fun (_, init) ->
         match init with Some e -> mentions_arguments_expr e | None -> false)
      decls
  | If (c, t, e) ->
    mentions_arguments_expr c || mentions_arguments_stmt t
    || (match e with Some e -> mentions_arguments_stmt e | None -> false)
  | While (_, c, b) -> mentions_arguments_expr c || mentions_arguments_stmt b
  | Do_while (_, b, c) ->
    mentions_arguments_stmt b || mentions_arguments_expr c
  | For (_, init, cond, upd, body) ->
    (match init with
     | Some (Init_var decls) ->
       List.exists
         (fun (_, i) ->
            match i with Some e -> mentions_arguments_expr e | None -> false)
         decls
     | Some (Init_expr e) -> mentions_arguments_expr e
     | None -> false)
    || (match cond with Some e -> mentions_arguments_expr e | None -> false)
    || (match upd with Some e -> mentions_arguments_expr e | None -> false)
    || mentions_arguments_stmt body
  | For_in (_, binder, obj, body) ->
    (match binder with
     | Binder_ident n -> String.equal n "arguments"
     | Binder_var _ -> false)
    || mentions_arguments_expr obj || mentions_arguments_stmt body
  | Return e ->
    (match e with Some e -> mentions_arguments_expr e | None -> false)
  | Throw e -> mentions_arguments_expr e
  | Try (body, catch, finally) ->
    mentions_arguments_stmts body
    || (match catch with
        | Some (p, cb) ->
          String.equal p "arguments" || mentions_arguments_stmts cb
        | None -> false)
    || (match finally with
        | Some fb -> mentions_arguments_stmts fb
        | None -> false)
  | Block body -> mentions_arguments_stmts body
  | Switch (d, cases) ->
    mentions_arguments_expr d
    || List.exists
         (fun (g, body) ->
            (match g with
             | Some e -> mentions_arguments_expr e
             | None -> false)
            || mentions_arguments_stmts body)
         cases
  | Labeled (_, body) -> mentions_arguments_stmt body
  | Func_decl _ | Break _ | Continue _ | Empty -> false

and mentions_arguments_expr (e : expr) =
  match e.e with
  | Ident n -> String.equal n "arguments"
  | Number _ | String _ | Bool _ | Null | Undefined | This -> false
  | Function_expr _ -> false (* own [arguments] inside *)
  | Array_lit es -> List.exists mentions_arguments_expr es
  | Object_lit props ->
    List.exists (fun (_, v) -> mentions_arguments_expr v) props
  | Member (o, _) -> mentions_arguments_expr o
  | Index (o, i) -> mentions_arguments_expr o || mentions_arguments_expr i
  | Call (c, args) | New (c, args) ->
    mentions_arguments_expr c || List.exists mentions_arguments_expr args
  | Unop (_, x) -> mentions_arguments_expr x
  | Binop (_, a, b) | Logical (_, a, b) | Seq (a, b) ->
    mentions_arguments_expr a || mentions_arguments_expr b
  | Cond (c, t, f) ->
    mentions_arguments_expr c || mentions_arguments_expr t
    || mentions_arguments_expr f
  | Assign (tgt, _, rhs) ->
    mentions_arguments_target tgt || mentions_arguments_expr rhs
  | Update (_, _, tgt) -> mentions_arguments_target tgt
  | Intrinsic (_, args) -> List.exists mentions_arguments_expr args

and mentions_arguments_target = function
  | Tgt_ident n -> String.equal n "arguments"
  | Tgt_member (o, _) -> mentions_arguments_expr o
  | Tgt_index (o, i) ->
    mentions_arguments_expr o || mentions_arguments_expr i

(* ------------------------------------------------------------------ *)
(* Static environments *)

type senv = {
  tab : Symbol.table;
  layout : layout;
  is_global : bool;
  catch_names : (string, unit) Hashtbl.t;
  wrapper_name : string option;
      (* fname a runtime wrapper scope *may* bind between this frame
         and its captured chain: references to it stay dynamic *)
  up : senv option;
}

let resolve_name env name =
  let rec go env depth =
    match Hashtbl.find_opt env.layout.l_table name with
    | Some slot ->
      if env.is_global then Some (lex_make ~depth:lex_global_depth ~slot)
      else if depth >= lex_global_depth then None (* absurd nesting *)
      else Some (lex_make ~depth ~slot)
    | None ->
      if Hashtbl.mem env.catch_names name then None
      else if
        match env.wrapper_name with
        | Some n -> String.equal n name
        | None -> false
      then None
      else (match env.up with Some up -> go up (depth + 1) | None -> None)
  in
  go env 0

(* Is [name] certainly bound (slot in some enclosing frame) with no
   intervening dynamic binder? Decides whether a named function
   expression can skip the runtime wrapper-scope test: the evaluator
   only creates the wrapper when the name is unbound at call time. *)
let rec statically_bound env name =
  if Hashtbl.mem env.layout.l_table name then true
  else if Hashtbl.mem env.catch_names name then false
  else if
    match env.wrapper_name with
    | Some n -> String.equal n name
    | None -> false
  then false
  else match env.up with Some up -> statically_bound up name | None -> false

(* ------------------------------------------------------------------ *)
(* Layout construction *)

let build_layout env_tab ~global ~params ~body =
  let table = Hashtbl.create 16 in
  let rev_names = ref [] in
  let count = ref 0 in
  let max_slot = ref (-1) in
  let slot_of name =
    match Hashtbl.find_opt table name with
    | Some s -> s
    | None ->
      let s =
        if global then Symbol.global_slot env_tab (Symbol.intern env_tab name)
        else begin
          let s = !count in
          incr count;
          s
        end
      in
      Hashtbl.replace table name s;
      rev_names := (name, s) :: !rev_names;
      if s > !max_slot then max_slot := s;
      s
  in
  let param_slots = Array.of_list (List.map slot_of params) in
  let arguments = if global then -1 else slot_of "arguments" in
  List.iter (fun n -> ignore (slot_of n)) (hoisted_names [] body);
  let decls =
    List.filter_map
      (fun (f : func) ->
         match f.fname with Some n -> Some (slot_of n, f) | None -> None)
      (List.rev (function_decls [] body))
  in
  let size = if global then !max_slot + 1 else !count in
  let names = Array.make (max size 1) "" in
  let syms = Array.make (max size 1) (-1) in
  List.iter
    (fun (name, s) ->
       names.(s) <- name;
       syms.(s) <- Symbol.intern env_tab name)
    !rev_names;
  {
    l_size = size;
    l_names = names;
    l_syms = syms;
    l_table = table;
    l_param_slots = param_slots;
    l_arguments = arguments;
    l_uses_arguments = (not global) && mentions_arguments_stmts body;
    l_decls = decls;
    l_fname_static = true (* overwritten per function below *)
  }

(* ------------------------------------------------------------------ *)
(* The walk *)

let rec resolve_stmts env stmts = List.iter (resolve_stmt env) stmts

and resolve_stmt env (s : stmt) =
  match s.s with
  | Expr_stmt e -> rx env e
  | Var_decl decls ->
    List.iter (fun (_, init) -> Option.iter (rx env) init) decls
  | If (c, t, e) ->
    rx env c;
    resolve_stmt env t;
    Option.iter (resolve_stmt env) e
  | While (_, c, b) ->
    rx env c;
    resolve_stmt env b
  | Do_while (_, b, c) ->
    resolve_stmt env b;
    rx env c
  | For (_, init, cond, upd, body) ->
    (match init with
     | Some (Init_var decls) ->
       List.iter (fun (_, i) -> Option.iter (rx env) i) decls
     | Some (Init_expr e) -> rx env e
     | None -> ());
    Option.iter (rx env) cond;
    Option.iter (rx env) upd;
    resolve_stmt env body
  | For_in (_, _, obj, body) ->
    rx env obj;
    resolve_stmt env body
  | Return e -> Option.iter (rx env) e
  | Throw e -> rx env e
  | Try (body, catch, finally) ->
    resolve_stmts env body;
    (match catch with Some (_, cb) -> resolve_stmts env cb | None -> ());
    (match finally with Some fb -> resolve_stmts env fb | None -> ())
  | Block body -> resolve_stmts env body
  | Func_decl f ->
    (* the name is hoisted into the enclosing frame: always statically
       bound, never needs the wrapper test *)
    resolve_func env f ~fname_static:true
  | Switch (d, cases) ->
    rx env d;
    List.iter
      (fun (guard, body) ->
         Option.iter (rx env) guard;
         resolve_stmts env body)
      cases
  | Labeled (_, body) -> resolve_stmt env body
  | Break _ | Continue _ | Empty -> ()

and resolve_func env (f : func) ~fname_static =
  let layout =
    { (build_layout env.tab ~global:false ~params:f.params ~body:f.body) with
      l_fname_static = fname_static }
  in
  f.layout <- Some layout;
  let fenv =
    {
      tab = env.tab;
      layout;
      is_global = false;
      catch_names =
        (let h = Hashtbl.create 4 in
         List.iter
           (fun n -> Hashtbl.replace h n ())
           (catch_names_stmts [] f.body);
         h);
      wrapper_name = (if fname_static then None else f.fname);
      up = Some env;
    }
  in
  resolve_stmts fenv f.body

and rx env (e : expr) =
  match e.e with
  | Number _ | Bool _ | Null | Undefined | This -> e.lex <- lex_unresolved
  | String s -> e.lex <- Symbol.intern env.tab s
  | Ident name ->
    e.lex <-
      (match resolve_name env name with Some lex -> lex | None -> lex_unresolved)
  | Array_lit es ->
    e.lex <- lex_unresolved;
    List.iter (rx env) es
  | Object_lit props ->
    e.lex <- lex_unresolved;
    List.iter (fun (_, v) -> rx env v) props
  | Function_expr f ->
    e.lex <- lex_unresolved;
    let fname_static =
      match f.fname with
      | None -> true
      | Some name -> statically_bound env name
    in
    resolve_func env f ~fname_static
  | Member (o, _) ->
    e.lex <- lex_unresolved;
    rx env o
  | Index (o, i) ->
    e.lex <- lex_unresolved;
    rx env o;
    rx env i
  | Call (c, args) | New (c, args) ->
    e.lex <- lex_unresolved;
    rx env c;
    List.iter (rx env) args
  | Unop (_, x) ->
    e.lex <- lex_unresolved;
    rx env x
  | Binop (_, a, b) | Logical (_, a, b) | Seq (a, b) ->
    e.lex <- lex_unresolved;
    rx env a;
    rx env b
  | Cond (c, t, f) ->
    e.lex <- lex_unresolved;
    rx env c;
    rx env t;
    rx env f
  | Assign (tgt, _, rhs) ->
    resolve_target env e tgt;
    rx env rhs
  | Update (_, _, tgt) -> resolve_target env e tgt
  | Intrinsic (name, args) ->
    e.lex <- Symbol.intern env.tab name;
    List.iter (rx env) args

and resolve_target env (e : expr) (tgt : target) =
  match tgt with
  | Tgt_ident name ->
    e.lex <-
      (match resolve_name env name with Some lex -> lex | None -> lex_unresolved)
  | Tgt_member (o, _) ->
    e.lex <- lex_unresolved;
    rx env o
  | Tgt_index (o, i) ->
    e.lex <- lex_unresolved;
    rx env o;
    rx env i

(* ------------------------------------------------------------------ *)

let program tab (p : program) =
  let glayout =
    build_layout tab ~global:true ~params:[] ~body:p.stmts
  in
  let genv =
    {
      tab;
      layout = glayout;
      is_global = true;
      catch_names =
        (let h = Hashtbl.create 4 in
         List.iter
           (fun n -> Hashtbl.replace h n ())
           (catch_names_stmts [] p.stmts);
         h);
      wrapper_name = None;
      up = None;
    }
  in
  resolve_stmts genv p.stmts;
  p.glayout <- Some glayout;
  p.resolved_for <- Some tab

let ensure tab (p : program) =
  match p.resolved_for with
  | Some t when t == tab -> ()
  | _ -> program tab p
