(** Affine subscript analysis: linear forms of subscript expressions,
    induction recognition for [for] headers, and the symbolic
    stride-vs-spread footprint disjointness proof. *)

open Jsir

type induction = {
  ivar : string;
  lower : Lin.t option;  (** initial value, when affine *)
  step : int;  (** constant signed step per iteration *)
  upper : (Lin.t * bool) option;  (** bound and strictness *)
  span_line : int;
}

val lin_of :
  ?call:(Ast.expr -> Ast.expr list -> Lin.t option) ->
  subst:(string -> Lin.t option) ->
  Ast.expr ->
  Lin.t option
(** Normalise an expression into a linear combination of names;
    [subst] supplies forms for names proven single-assignment in the
    loop body; [call] may inline user index-helper calls into linear
    forms. [None] when not (integer-)affine. *)

val induction_of_for :
  ?subst:(string -> Lin.t option) ->
  ?const_env:(string -> float option) ->
  Ast.for_init option ->
  Ast.expr option ->
  Ast.expr option ->
  line:int ->
  induction option
(** Recognise [for (i = e0; i </<=/>/>= e1; i += c)] and friends;
    [const_env] (typically {!Range.const_global}) lets a symbolic
    step [i += W] resolve to a constant. *)

val extent_of : induction -> (Lin.t * Lin.t) option
(** Inclusive value range of a counted inner loop (requires known
    lower bound, positive constant step, and an upper bound). *)

type access = { sub : Lin.t; line : int; w : bool  (** write access *) }

type footprint_result =
  | Disjoint
  | Same_slot of int
      (** accesses hit a single slot every iteration — a carried
          dependence when the root is written *)
  | Anti_only
      (** every cross-iteration conflict is an anti (write-after-read)
          dependence — safe under snapshot-fork execution, observable
          as WAR triples at runtime *)
  | Unproven of string * int

val check :
  ivar:string ->
  step:int ->
  inner:(string * (Lin.t * Lin.t)) list ->
  invariant:(string -> bool) ->
  accesses:access list ->
  footprint_result
(** Are per-iteration footprints over these accesses pairwise
    disjoint across iterations of the [ivar] loop? [inner] gives the
    value ranges of inner counted loops to expand away; [invariant]
    must hold of every residual name. *)

val check_for_in :
  binder:string -> accesses:access list -> footprint_result
(** A for-in root is disjoint iff every access indexes by the binder
    alone (distinct keys). *)
