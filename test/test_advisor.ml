(* The causal what-if advisor: model laws (Amdahl monotonicity and the
   serial-fraction bound), byte-determinism of the advise report
   against the committed goldens, predicted-vs-measured grading on the
   nests par-exec really runs, and well-formedness of the scheduler
   timeline export. *)

let qtest = QCheck_alcotest.to_alcotest

let find_workload name =
  List.find
    (fun (w : Workloads.Workload.t) -> w.name = name)
    Workloads.Registry.all

let eps = 1e-9

(* ------------------------------------------------------------------ *)
(* Model laws on real reports: within each nest the predicted speedup
   is non-decreasing in the core count and never exceeds the Amdahl
   asymptote 1/(1 - fraction). *)

let test_monotone_in_cores () =
  List.iter
    (fun (w : Workloads.Workload.t) ->
       let rep = Advisor.analyze ~cores:[ 2; 3; 4; 8; 16; 64 ] w in
       List.iter
         (fun (n : Advisor.nest) ->
            ignore
              (List.fold_left
                 (fun prev (p : Advisor.predicted) ->
                    if p.speedup +. eps < prev then
                      Alcotest.failf
                        "%s %s: predicted speedup decreased (%.6f after \
                         %.6f)"
                        w.name n.label p.speedup prev;
                    if p.speedup > n.bound +. eps then
                      Alcotest.failf
                        "%s %s: predicted %.6f exceeds bound %.6f" w.name
                        n.label p.speedup n.bound;
                    p.speedup)
                 0. n.predicted);
            Alcotest.(check bool)
              (Printf.sprintf "%s %s: fraction in [0,1]" w.name n.label)
              true
              (n.fraction >= 0. && n.fraction <= 1.))
         rep.nests)
    Workloads.Registry.all

(* The same law as a property over the bare model, away from any
   workload: random fraction, random core ladder. *)
let amdahl_monotone_law =
  QCheck.Test.make ~name:"amdahl: monotone in cores, bounded by asymptote"
    ~count:300
    QCheck.(
      pair (int_range 0 100)
        (list_of_size (Gen.int_range 1 8) (int_range 1 128)))
    (fun (pct, cores) ->
       let f = float_of_int pct /. 100. in
       let cores = List.sort_uniq compare cores in
       let bound = Js_parallel.Amdahl.asymptote ~parallel_fraction:f in
       let speedups =
         List.map
           (fun c ->
              Js_parallel.Amdahl.speedup ~parallel_fraction:f ~workers:c)
           cores
       in
       let rec monotone = function
         | a :: (b :: _ as rest) -> a <= b +. eps && monotone rest
         | _ -> true
       in
       monotone speedups
       && List.for_all (fun s -> s <= bound +. eps) speedups)

(* ------------------------------------------------------------------ *)
(* Golden byte-determinism: the advise report of every workload
   matches its committed golden, and two in-process runs agree. *)

let golden_name (w : Workloads.Workload.t) =
  String.map (fun c -> if c = ' ' then '_' else c) w.name ^ ".json"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_goldens () =
  (* Regenerate with [make advise ADVISE_REGEN=1] after an intentional
     model or analyzer change. *)
  List.iter
    (fun (w : Workloads.Workload.t) ->
       let path =
         let p = Filename.concat "golden/advise" (golden_name w) in
         if Sys.file_exists p then p else Filename.concat "test" p
       in
       let actual = Advisor.to_json (Advisor.analyze w) in
       Alcotest.(check string)
         (w.name ^ " matches golden")
         (read_file path) actual)
    Workloads.Registry.all

let test_deterministic () =
  let w = find_workload "fluidSim" in
  let render () = Advisor.to_json (Advisor.analyze w) in
  Alcotest.(check string) "two runs byte-identical" (render ()) (render ())

(* ------------------------------------------------------------------ *)
(* Grading: every nest par-exec executes gains a measured row whose
   fields are internally consistent and whose band flag matches the
   documented definition (DESIGN.md §14). Wall-clock speedups
   themselves are host-dependent, so only the bookkeeping is
   asserted — an off-model row is a flag, not a failure. *)

let test_measured_rows () =
  let w = find_workload "HAAR.js" in
  let rep = Advisor.analyze w in
  Alcotest.(check (list (pair int (float 1e-9))))
    "measured starts empty" []
    (List.map (fun (m : Advisor.measured_row) -> (m.m_id, 0.)) rep.measured);
  let n = Advisor.measure ~jobs:2 rep w in
  Alcotest.(check int) "count mirrors stored rows" n
    (List.length rep.measured);
  Alcotest.(check bool) "par-exec covered at least one nest" true (n > 0);
  List.iter
    (fun (m : Advisor.measured_row) ->
       Alcotest.(check bool)
         (Printf.sprintf "%s: predicted present" m.m_label)
         true (m.m_predicted >= 1. -. eps);
       Alcotest.(check bool)
         (Printf.sprintf "%s: fraction in [0,1]" m.m_label)
         true
         (m.m_fraction >= 0. && m.m_fraction <= 1.);
       Alcotest.(check int)
         (Printf.sprintf "%s: jobs recorded" m.m_label)
         2 m.m_jobs;
       let in_band =
         Float.abs (m.m_predicted -. m.m_program_speedup)
         <= (0.25 *. m.m_predicted) +. eps
       in
       Alcotest.(check bool)
         (Printf.sprintf "%s: band flag matches definition" m.m_label)
         in_band m.m_within_band)
    rep.measured;
  (* The JSON gains the measured section only after [measure], and the
     deterministic plan members are unchanged by it. *)
  let doc = Advisor.to_json rep in
  Alcotest.(check bool) "json carries measured section" true
    (Helpers.contains ~sub:"\"measured_nests\"" doc);
  Alcotest.(check bool) "plain report has no measured section" false
    (Helpers.contains ~sub:"\"measured_nests\""
       (Advisor.to_json (Advisor.analyze w)))

(* ------------------------------------------------------------------ *)
(* Timeline export: every line parses as a JSON object with the
   documented members, timestamps are non-decreasing, and task
   start/stop events balance per domain. *)

let test_timeline_export () =
  let module Trace = Js_parallel.Telemetry.Trace in
  Trace.start ();
  Js_parallel.Pool.with_pool ~domains:2 (fun pool ->
      let hits = Atomic.make 0 in
      Js_parallel.Pool.parallel_for pool ~lo:0 ~hi:64 ~chunk:4 (fun _ ->
          Atomic.incr hits);
      Alcotest.(check int) "work ran" 64 (Atomic.get hits));
  Trace.stop ();
  let path = Filename.temp_file "jsceres_timeline" ".jsonl" in
  Trace.write_file path;
  let lines =
    String.split_on_char '\n' (String.trim (read_file path))
    |> List.filter (fun l -> l <> "")
  in
  Sys.remove path;
  Alcotest.(check bool) "trace recorded events" true (List.length lines > 0);
  let starts = Hashtbl.create 4 and stops = Hashtbl.create 4 in
  let bump tbl d = Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)) in
  let last_t = ref neg_infinity in
  List.iter
    (fun line ->
       match Ceres_util.Json.of_string line with
       | Error msg -> Alcotest.failf "bad timeline line %S: %s" line msg
       | Ok doc ->
         let t =
           Option.bind (Ceres_util.Json.member "t_ms" doc)
             Ceres_util.Json.float_opt
         and dom =
           Option.bind (Ceres_util.Json.member "domain" doc)
             Ceres_util.Json.int_opt
         and ev =
           Option.bind (Ceres_util.Json.member "ev" doc)
             Ceres_util.Json.string_opt
         in
         (match (t, dom, ev) with
          | Some t, Some d, Some ev ->
            Alcotest.(check bool) "t_ms non-negative" true (t >= 0.);
            Alcotest.(check bool) "t_ms non-decreasing" true (t >= !last_t);
            last_t := t;
            Alcotest.(check bool) "known event kind" true
              (List.mem ev [ "task_start"; "task_stop"; "steal"; "idle_start" ]);
            if ev = "task_start" then bump starts d;
            if ev = "task_stop" then bump stops d
          | _ -> Alcotest.failf "timeline line missing members: %s" line))
    lines;
  Hashtbl.iter
    (fun d n ->
       Alcotest.(check int)
         (Printf.sprintf "domain %d start/stop balance" d)
         n
         (Option.value ~default:0 (Hashtbl.find_opt stops d)))
    starts;
  Alcotest.(check bool) "some task ran on the trace" true
    (Hashtbl.length starts > 0)

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "predictions monotone and bounded (12 workloads)"
      `Quick test_monotone_in_cores;
    qtest amdahl_monotone_law;
    Alcotest.test_case "golden advise reports" `Quick test_goldens;
    Alcotest.test_case "report byte-deterministic" `Quick test_deterministic;
    Alcotest.test_case "measured rows on par-exec nests" `Quick
      test_measured_rows;
    Alcotest.test_case "timeline export well-formed" `Quick
      test_timeline_export ]
