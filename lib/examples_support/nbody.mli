(** The paper's Fig. 6 N-body walkthrough, shared by the `nbody` bench
    section, [examples/nbody_analysis.exe] and the regression tests
    that pin the Sec. 3.3 characterizations verbatim. *)

val source : string
(** The step/display program, laid out so the hot [for] sits at line 6
    and the driving [while] at line 23 (approximating the listing). *)

val setup : string
(** Scene construction (particles, force stub); runs uninstrumented,
    like browser state predating the analysis. *)

type analysis = {
  infos : Jsir.Loops.info array;
  rt : Ceres.Runtime.t;
  for_loop : Jsir.Ast.loop_id; (** the paper's "for(line 6)" *)
  while_loop : Jsir.Ast.loop_id; (** the paper's "while(line 24)" *)
}

val analyze : unit -> analysis
(** Run the example under full dependence instrumentation. *)

val report : unit -> string
(** The rendered walkthrough, including the paper's expected output for
    comparison. *)
