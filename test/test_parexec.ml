(* Parallel loop execution (Par_exec): the fork/merge path must be
   observably indistinguishable from sequential interpretation — same
   console lines, same virtual-clock readings — across every workload
   and every job count, with proven nests actually going through the
   pool where the analyzer found them. *)

let qtest = QCheck_alcotest.to_alcotest

type obs = {
  console : string list;
  busy : int64;
  now : int64;
}

let observe (st : Interp.Value.state) =
  { console = st.console;
    busy = Ceres_util.Vclock.busy st.clock;
    now = Ceres_util.Vclock.now st.clock }

let obs_testable : obs Alcotest.testable =
  Alcotest.testable
    (fun ppf o ->
       Format.fprintf ppf "busy=%Ld now=%Ld console=[%s]" o.busy o.now
         (String.concat "; " (List.rev_map String.escaped o.console)))
    ( = )

let workload name = Option.get (Workloads.Registry.find name)

let run_seq w = observe (Workloads.Harness.run_plain w).st

let run_par ~pool ~jobs w =
  let pe =
    Js_parallel.Par_exec.create ~mode:(Js_parallel.Par_exec.Parallel pool)
      ~jobs ()
  in
  let o = observe (Workloads.Harness.run_plain ~par:pe w).st in
  (o, pe)

(* ------------------------------------------------------------------ *)
(* Acceptance: parallel output ≡ sequential bytes on all 12 workloads. *)

let test_all_workloads_deterministic () =
  Js_parallel.Pool.with_pool ~domains:2 (fun pool ->
      List.iter
        (fun (w : Workloads.Workload.t) ->
           let seq = run_seq w in
           let par, _ = run_par ~pool ~jobs:2 w in
           Alcotest.check obs_testable
             (Printf.sprintf "%s: par ≡ seq at -j 2" w.name)
             seq par)
        Workloads.Registry.all)

(* The workloads whose proven nests are big enough to fork must really
   execute through the pool (not silently fall back), and stay
   deterministic across job counts. *)
let test_proven_nests_execute () =
  let seq_caman = run_seq (workload "CamanJS") in
  let seq_haar = run_seq (workload "HAAR.js") in
  List.iter
    (fun jobs ->
       Js_parallel.Pool.with_pool ~domains:jobs (fun pool ->
           let par, pe = run_par ~pool ~jobs (workload "CamanJS") in
           Alcotest.check obs_testable
             (Printf.sprintf "CamanJS: par ≡ seq at -j %d" jobs)
             seq_caman par;
           Alcotest.(check bool)
             (Printf.sprintf "CamanJS runs nests in parallel at -j %d" jobs)
             true
             (Js_parallel.Par_exec.nests_run pe > 0);
           let par, pe = run_par ~pool ~jobs (workload "HAAR.js") in
           Alcotest.check obs_testable
             (Printf.sprintf "HAAR.js: par ≡ seq at -j %d" jobs)
             seq_haar par;
           Alcotest.(check bool)
             (Printf.sprintf "HAAR.js runs nests in parallel at -j %d" jobs)
             true
             (Js_parallel.Par_exec.nests_run pe > 0)))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Generated additive reductions: the merged accumulator must equal
   the sequential run and the plain [fold_left] over the inputs. *)

let reduction_source init xs =
  let n = List.length xs in
  Printf.sprintf
    "var a = [%s];\nvar acc = %d;\nfor (var i = 0; i < %d; i++) { acc = acc \
     + a[i]; }\nconsole.log(acc);"
    (String.concat ", " (List.map string_of_int xs))
    init n

let run_program_console ?par src =
  let st, _ = Helpers.fresh_state () in
  let program = Jsir.Parser.parse_program src in
  (match par with
   | Some pe ->
     let report = Analysis.Driver.analyze program in
     Js_parallel.Par_exec.install pe st ~report
   | None -> ());
  Interp.Eval.run_program st program;
  st.Interp.Value.console

let generated_reductions_deterministic pool =
  QCheck.Test.make ~name:"generated reductions: par ≡ seq ≡ fold_left"
    ~count:30
    QCheck.(
      pair (int_range (-1000) 1000)
        (list_of_size (Gen.int_range 16 64) (int_range (-10000) 10000)))
    (fun (init, xs) ->
       let src = reduction_source init xs in
       let seq = run_program_console src in
       let pe =
         Js_parallel.Par_exec.create
           ~mode:(Js_parallel.Par_exec.Parallel pool) ~jobs:2 ()
       in
       let par = run_program_console ~par:pe src in
       let expect =
         Printf.sprintf "%d" (List.fold_left ( + ) init xs)
       in
       par = seq && seq = [ expect ]
       && Js_parallel.Par_exec.nests_run pe = 1)

(* [parallel_reduce]'s merged partials against the plain fold. *)
let parallel_reduce_equals_fold pool =
  QCheck.Test.make ~name:"parallel_reduce = fold_left" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range (-1000) 1000))
    (fun xs ->
       let arr = Array.of_list xs in
       let sum =
         Js_parallel.Pool.parallel_reduce pool ~lo:0 ~hi:(Array.length arr)
           ~init:0
           ~body:(fun i -> arr.(i))
           ~combine:( + ) ()
       in
       sum = List.fold_left ( + ) 0 xs)

(* One pool for the qcheck batteries: creating a fresh pool per
   generated case would dominate the suite's runtime. *)
let shared_pool = lazy (Js_parallel.Pool.create ~domains:2 ())

let suite =
  [ Alcotest.test_case "12 workloads: par output ≡ seq at -j 2" `Slow
      test_all_workloads_deterministic;
    Alcotest.test_case "proven nests execute via pool (-j 1/2/4)" `Slow
      test_proven_nests_execute;
    qtest (generated_reductions_deterministic (Lazy.force shared_pool));
    qtest (parallel_reduce_equals_fold (Lazy.force shared_pool)) ]
