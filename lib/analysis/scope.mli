(** Scope resolution for MiniJS (stage 1 of the static analyzer).

    Indexes every function of the program — the top level is function
    0 — honouring [var] hoisting (to the enclosing function, through
    blocks) and parameter/function-declaration binding; resolves name
    occurrences to owning frames; records the definitions reaching
    each binding (consumed by the effect and alias stages); and
    tabulates direct global reads/writes per function. *)

open Jsir

type fid = int

module SS : Set.S with type elt = string

(** A memory root: the binding an object is reached from. *)
type root =
  | Rglobal of string
  | Rlocal of fid * string  (** a [var]/param owned by a function frame *)

val root_compare : root -> root -> int
val root_name : root -> string
val root_to_string : root -> string

module RS : Set.S with type elt = root
module RM : Map.S with type key = root

type func_rec = {
  fid : fid;
  fname : string option;
  params : string list;
  parent : fid option;
  locals : SS.t;  (** params + hoisted vars + inner function-decl names *)
  body : Ast.stmt list;
  line : int;
}

type def =
  | Dexpr of fid * Ast.expr * fid option
      (** RHS, the frame it appears in, and its function id when the
          RHS is syntactically a function *)
  | Dunknown

type t

val resolve_program : Ast.program -> t

val functions : t -> func_rec list
val func : t -> fid -> func_rec
val resolve : t -> fid -> string -> root

type binding = Local | Captured of fid | Global

val classify : t -> fid -> string -> binding
(** How a name used inside function [fid] is bound. *)

val captures : t -> fid -> (string * fid) list
(** Free names of [fid]'s own body bound by an enclosing function
    frame, with the owner — the closure captures. *)

val global_reads : t -> fid -> string list
val global_writes : t -> fid -> string list
(** Direct (non-transitive) global accesses of the function body. *)

val defs_of : t -> root -> def list
(** Every definition reaching the binding. For parameters these are
    the matching arguments of the discovered call sites. Never
    empty: unknown sources appear as {!Dunknown}. *)

val funcs_of_root : t -> root -> fid list
(** Functions the binding can be bound to (via direct function
    definitions reaching it). *)

val prop_funcs : t -> string -> fid list
(** Functions assigned to a property of that name anywhere in the
    program (object literals, [o.m = function], prototypes). *)

val call_sites : t -> root -> (fid * (Ast.expr * fid option) list) list
(** Call sites whose callee is that identifier binding. *)

val fresh_method : string -> bool
(** Builtin methods returning a freshly allocated object
    ([slice], [map], [getImageData], ...). *)

val alloc_sites : t -> root -> string list option
(** [Some sites] when every definition reaching the root is a fresh
    allocation (literal, [new], copying builtin, or the [.data] of
    such) or a scalar; the allocation-site keys. Copy cycles between
    roots (the pointer-swap idiom) resolve to the union of the
    allocation defs around the cycle. [None] = not alias-isolated. *)

val expr_sites : t -> fid -> Ast.expr -> string list option
(** Allocation sites of an arbitrary expression evaluated in [fid]
    (scalars have none, identifiers defer to {!alloc_sites}). *)

val swap_distinct : t -> root -> root -> bool
(** The pair is joined by a recognized three-statement swap idiom
    [t = a; a = b; b = t], each root has exactly one (distinct)
    allocation def, and every other def of either root is a move of
    this very swap — the two bindings then always hold two distinct
    allocations, so they never alias. *)

val may_alias : t -> root -> root -> bool
(** Conservative alias test: two roots may alias unless both are
    alias-isolated with disjoint allocation-site sets, proven
    swap-distinct, or parameters of one function whose actual
    arguments are pairwise non-aliasing at every call site. *)
