(** Aggregation of coded survey responses into the paper's Figures 1-4
    and the Sec. 2.3/2.4 statistics. *)

type figure1_row = {
  category : Types.trend_category;
  count : int;
  pct : float; (** over the coded answers, as in the paper (26/85=31%) *)
}

val figure1 :
  ?book:Coding.codebook ->
  Types.respondent array ->
  figure1_row list * int
(** Thematic coding of the future-trends answers; also returns the
    number of respondents without a codeable answer. *)

type figure2_row = {
  component : Types.component;
  not_issue : int;
  so_so : int;
  bottleneck : int;
}

val figure2 : Types.respondent array -> figure2_row list

val figure3 : Types.respondent array -> int array
(** Functional (1) .. imperative (5) histogram. *)

val figure4 : Types.respondent array -> int array
(** Monomorphic (1) .. polymorphic (5) histogram. *)

val operator_preference_pct : Types.respondent array -> float
(** Sec. 2.3: percentage preferring builtin operators over loops. *)

val global_use_counts :
  Types.respondent array -> (Types.global_use * int) list
(** Sec. 2.4: thematic counts of the global-variable answers. *)

(** {1 Rendering} *)

val render_figure1 : figure1_row list -> string
val render_figure2 : figure2_row list -> string
val render_histogram : title:string -> int array -> string
